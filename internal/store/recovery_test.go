package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestRecoveryAtEveryTruncationOffset is the crash-safety property test: a
// segment truncated at EVERY byte offset — simulating kill -9 at any point
// during an append — must recover to exactly the entry set whose records lie
// fully inside the surviving prefix. Nothing before the torn tail may be
// lost or corrupted, and nothing after it may partially apply.
func TestRecoveryAtEveryTruncationOffset(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	s, err := Open(Options{Dir: dir, MaxBytes: -1, NoSync: true, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}

	// A script mixing puts, overwrites, deletes and kinds. Values differ in
	// length so record boundaries land at irregular offsets.
	type op struct {
		del  bool
		key  string
		kind Kind
		val  string
	}
	script := []op{
		{key: "res-a", kind: KindResult, val: "first result payload"},
		{key: "snap-1", kind: KindSnapshot, val: "<snapshot body, somewhat longer to vary framing>"},
		{key: "res-b", kind: KindResult, val: "b"},
		{key: "res-a", kind: KindResult, val: "overwritten result payload with a different length"},
		{del: true, key: "res-b"},
		{key: "meta", kind: KindMeta, val: "fp-12345"},
		{key: "res-c", kind: KindResult, val: "third"},
		{del: true, key: "snap-1"},
		{key: "res-b", kind: KindResult, val: "resurrected after delete"},
	}

	// boundaries[i] is the segment size after the first i records;
	// states[i] the live map at that point.
	boundaries := []int64{int64(len(fileMagic))}
	states := []map[string]string{{}}
	cur := map[string]string{}
	for _, o := range script {
		if o.del {
			if err := s.Delete(o.key); err != nil {
				t.Fatal(err)
			}
			delete(cur, o.key)
		} else {
			if _, err := s.Put(o.key, o.kind, []byte(o.val)); err != nil {
				t.Fatal(err)
			}
			cur[o.key] = o.val
		}
		boundaries = append(boundaries, s.Stats().FileBytes)
		snap := make(map[string]string, len(cur))
		for k, v := range cur {
			snap[k] = v
		}
		states = append(states, snap)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, segmentName))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(blob)) != boundaries[len(boundaries)-1] {
		t.Fatalf("file is %d bytes, last boundary %d", len(blob), boundaries[len(boundaries)-1])
	}

	// expectedAt returns the newest state whose boundary fits inside a
	// truncation at off, plus that boundary.
	expectedAt := func(off int64) (map[string]string, int64) {
		state, boundary := map[string]string{}, int64(0)
		for i, b := range boundaries {
			if b <= off {
				state, boundary = states[i], b
			}
		}
		return state, boundary
	}

	tdir := t.TempDir()
	tpath := filepath.Join(tdir, segmentName)
	for off := 0; off <= len(blob); off++ {
		if err := os.WriteFile(tpath, blob[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		rs, err := Open(Options{Dir: tdir, MaxBytes: -1, NoSync: true, Now: clock.now})
		if err != nil {
			t.Fatalf("offset %d: open: %v", off, err)
		}
		want, boundary := expectedAt(int64(off))
		if got := rs.Len(); got != len(want) {
			t.Fatalf("offset %d: recovered %d entries, want %d", off, got, len(want))
		}
		for key, val := range want {
			gotVal, _, ok, err := rs.Get(key)
			if err != nil || !ok {
				t.Fatalf("offset %d: key %q: ok=%v err=%v", off, key, ok, err)
			}
			if string(gotVal) != val {
				t.Fatalf("offset %d: key %q = %q, want %q", off, key, gotVal, val)
			}
		}
		rec := rs.Recovery()
		wantTorn := int64(off) - boundary
		if off >= len(fileMagic) && rec.TruncatedBytes != wantTorn {
			t.Fatalf("offset %d: truncated %d bytes, want %d", off, rec.TruncatedBytes, wantTorn)
		}
		// The recovered store must stay fully usable: append and reread.
		if _, err := rs.Put("post-crash", KindResult, []byte("appended after recovery")); err != nil {
			t.Fatalf("offset %d: post-recovery put: %v", off, err)
		}
		if v, _, ok, _ := rs.Get("post-crash"); !ok || string(v) != "appended after recovery" {
			t.Fatalf("offset %d: post-recovery get failed", off)
		}
		if err := rs.Close(); err != nil {
			t.Fatalf("offset %d: close: %v", off, err)
		}
	}
}

// TestRecoveryAtEveryByteFlip is the media-corruption property test,
// complementing the truncation test above: flipping one bit at EVERY byte
// offset of a finished segment must cost exactly the record containing the
// flip. Mid-segment flips are quarantined — recovery resyncs to the next
// record and every other entry survives — while a flip in the final record
// is indistinguishable from a torn tail and is truncated.
func TestRecoveryAtEveryByteFlip(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	s, err := Open(Options{Dir: dir, MaxBytes: -1, NoSync: true, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}

	type op struct {
		del  bool
		key  string
		kind Kind
		val  string
	}
	script := []op{
		{key: "res-a", kind: KindResult, val: "first result payload"},
		{key: "snap-1", kind: KindSnapshot, val: "<snapshot body, somewhat longer to vary framing>"},
		{key: "job-1", kind: KindJob, val: `{"kind":"audit"}`},
		{key: "res-a", kind: KindResult, val: "overwritten result payload with a different length"},
		{del: true, key: "job-1"},
		{key: "meta", kind: KindMeta, val: "fp-12345"},
		{key: "res-b", kind: KindResult, val: "resurrected"},
	}
	boundaries := []int64{int64(len(fileMagic))}
	for _, o := range script {
		if o.del {
			if err := s.Delete(o.key); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := s.Put(o.key, o.kind, []byte(o.val)); err != nil {
				t.Fatal(err)
			}
		}
		boundaries = append(boundaries, s.Stats().FileBytes)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, segmentName))
	if err != nil {
		t.Fatal(err)
	}

	// expectedSkipping replays the script with record d dropped, as recovery
	// must: a damaged put never applies, a damaged delete never deletes.
	expectedSkipping := func(d int) map[string]string {
		state := map[string]string{}
		for i, o := range script {
			if i == d {
				continue
			}
			if o.del {
				delete(state, o.key)
			} else {
				state[o.key] = o.val
			}
		}
		return state
	}
	recordOf := func(off int64) int {
		for i := 0; i+1 < len(boundaries); i++ {
			if off >= boundaries[i] && off < boundaries[i+1] {
				return i
			}
		}
		t.Fatalf("offset %d outside all records", off)
		return -1
	}

	tdir := t.TempDir()
	tpath := filepath.Join(tdir, segmentName)
	last := len(script) - 1
	for off := len(fileMagic); off < len(blob); off++ {
		corrupt := make([]byte, len(blob))
		copy(corrupt, blob)
		corrupt[off] ^= 0x01
		if err := os.WriteFile(tpath, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		rs, err := Open(Options{Dir: tdir, MaxBytes: -1, NoSync: true, Now: clock.now})
		if err != nil {
			t.Fatalf("offset %d: open: %v", off, err)
		}
		d := recordOf(int64(off))
		want := expectedSkipping(d)
		if got := rs.Len(); got != len(want) {
			t.Fatalf("offset %d (record %d): recovered %d entries, want %d", off, d, got, len(want))
		}
		for key, val := range want {
			gotVal, _, ok, err := rs.Get(key)
			if err != nil || !ok {
				t.Fatalf("offset %d: key %q: ok=%v err=%v", off, key, ok, err)
			}
			if string(gotVal) != val {
				t.Fatalf("offset %d: key %q = %q, want %q", off, key, gotVal, val)
			}
		}
		rec := rs.Recovery()
		damagedLen := boundaries[d+1] - boundaries[d]
		if d == last {
			if rec.TruncatedBytes != damagedLen || rec.QuarantinedBytes != 0 {
				t.Fatalf("offset %d (final record): recovery = %+v, want %d truncated bytes", off, rec, damagedLen)
			}
		} else {
			if rec.QuarantinedBytes != damagedLen || rec.QuarantinedRanges != 1 || rec.TruncatedBytes != 0 {
				t.Fatalf("offset %d (record %d): recovery = %+v, want %d quarantined bytes in 1 range", off, d, rec, damagedLen)
			}
		}
		// The recovered store must stay fully usable: append and reread.
		if _, err := rs.Put("post-flip", KindResult, []byte("appended after recovery")); err != nil {
			t.Fatalf("offset %d: post-recovery put: %v", off, err)
		}
		if v, _, ok, _ := rs.Get("post-flip"); !ok || string(v) != "appended after recovery" {
			t.Fatalf("offset %d: post-recovery get failed", off)
		}
		if err := rs.Close(); err != nil {
			t.Fatalf("offset %d: close: %v", off, err)
		}
	}
}

// TestQuarantineCompactsAway checks the full repair cycle: a quarantined
// range survives as reported dead space across reopen, and compaction
// rewrites the segment without it, after which verification is pristine.
func TestQuarantineCompactsAway(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir})
	mustPut(t, s, "a", KindResult, "alpha")
	mustPut(t, s, "b", KindResult, "beta")
	mustPut(t, s, "c", KindResult, "gamma")
	boundA := int64(len(fileMagic))
	s.Close()

	path := filepath.Join(dir, segmentName)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside record "b": it starts at the same offset "a" ends,
	// and all three records are the same shape.
	recLen := (int64(len(blob)) - boundA) / 3
	blob[boundA+recLen+headerSize] ^= 0x01
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, Options{Dir: dir})
	rec := s2.Recovery()
	if rec.QuarantinedBytes != recLen || rec.QuarantinedRanges != 1 || rec.Entries != 2 {
		t.Fatalf("recovery = %+v, want 2 entries with %d quarantined bytes", rec, recLen)
	}
	if _, ok := mustGetMissing(t, s2, "b"); ok {
		t.Fatal("quarantined entry b still resolves")
	}
	v, err := s2.Verify()
	if err != nil || !v.OK() || v.QuarantinedBytes != recLen {
		t.Fatalf("verify = %+v, %v", v, err)
	}
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	v, err = s2.Verify()
	if err != nil || !v.OK() || v.QuarantinedBytes != 0 || v.Entries != 2 {
		t.Fatalf("post-compaction verify = %+v, %v", v, err)
	}
	s2.Close()
}

func mustGetMissing(t *testing.T, s *Store, key string) (string, bool) {
	t.Helper()
	v, _, ok, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	return string(v), ok
}

// TestRecoveryAfterTruncationPersists reopens a store twice after a torn
// tail: the first recovery truncates the tail on disk, so the second open
// must see a clean log plus whatever the first session appended.
func TestRecoveryAfterTruncationPersists(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir})
	mustPut(t, s, "a", KindResult, "alpha")
	mustPut(t, s, "b", KindResult, "beta")
	s.Close()

	path := filepath.Join(dir, segmentName)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob[:len(blob)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, Options{Dir: dir})
	if rec := s2.Recovery(); rec.Entries != 1 || rec.TruncatedBytes == 0 {
		t.Fatalf("first recovery = %+v", rec)
	}
	mustPut(t, s2, "c", KindResult, "gamma")
	s2.Close()

	s3 := openTest(t, Options{Dir: dir})
	if rec := s3.Recovery(); rec.Entries != 2 || rec.TruncatedBytes != 0 {
		t.Fatalf("second recovery = %+v", rec)
	}
	if v, _ := mustGet(t, s3, "c"); v != "gamma" {
		t.Fatalf("c = %q", v)
	}
}

// TestConcurrentPutsAndGets exercises the store under the race detector.
func TestConcurrentPutsAndGets(t *testing.T) {
	s := openTest(t, Options{Dir: t.TempDir(), NoSync: true})
	done := make(chan error, 8)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("w%d-%d", w, i%10)
				if _, err := s.Put(key, KindResult, []byte(time.Now().String())); err != nil {
					done <- err
					return
				}
				if _, _, _, err := s.Get(key); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 4; w++ {
		go func() {
			for i := 0; i < 20; i++ {
				s.Entries()
				s.Stats()
				if _, err := s.GC(); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
