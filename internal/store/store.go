// Package store implements the audit service's durable state: a
// write-ahead, content-addressed on-disk store for completed audit results
// and ingested DepDB snapshots.
//
// The store is a single append-only segment (`store.log`): every mutation —
// put, delete, eviction — appends one checksummed record and the in-memory
// index replays the log on Open. Crash safety comes from the log discipline
// rather than in-place updates:
//
//   - each record carries a CRC32 over its header, key and value, so a torn
//     write (kill -9, power loss mid-append) is detected, the tail is
//     truncated, and every record before it stays intact;
//   - compaction — rewriting only the live records once enough of the file
//     is dead — builds the new segment in a temp file, fsyncs it, and
//     atomically renames it over the old one, so a crash at any point leaves
//     either the old complete segment or the new complete segment;
//   - appends are fsynced by default, so a result acknowledged to a client
//     survives an immediate hard kill.
//
// Values are opaque bytes; callers (internal/auditd) choose the encoding and
// the content-addressed keys (SHA-256 cache addresses for results, canonical
// DepDB fingerprints for snapshots). Size- and age-based eviction applies to
// KindResult entries only: snapshots are superseded explicitly by their
// writer and metadata is tiny.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"indaas/internal/telemetry"
)

// Kind tags what an entry holds, so `indaas store ls` and eviction can tell
// cached results from DepDB snapshots without decoding values.
type Kind uint8

const (
	// KindResult is a completed audit/recommendation result.
	KindResult Kind = 1
	// KindSnapshot is an encoded DepDB snapshot.
	KindSnapshot Kind = 2
	// KindMeta is small store metadata (e.g. the current-snapshot pointer).
	KindMeta Kind = 3
	// KindJob is a journaled in-flight job: written when auditd accepts a
	// submission, tombstoned when the job settles, and replayed at boot to
	// re-enqueue work a crash interrupted. Exempt from result eviction.
	KindJob Kind = 4
	// kindTombstone marks a deletion; never surfaced to callers.
	kindTombstone Kind = 0xFF
)

func (k Kind) String() string {
	switch k {
	case KindResult:
		return "result"
	case KindSnapshot:
		return "snapshot"
	case KindMeta:
		return "meta"
	case KindJob:
		return "job"
	case kindTombstone:
		return "tombstone"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

const (
	// fileMagic begins every segment; a file too short to hold it is a torn
	// creation and is reinitialized.
	fileMagic = "INDAAS-STORE-v1\n"
	// headerSize is the fixed per-record prefix:
	// crc32(4) kind(1) unixNano(8) keyLen(2) valLen(4).
	headerSize = 19
	// maxValLen bounds a single value; anything larger in a header is
	// treated as corruption.
	maxValLen = 1 << 30
	// segmentName is the single data file inside the store directory.
	segmentName = "store.log"
	// compactMinDead is the least dead bytes worth rewriting the file for.
	compactMinDead = 1 << 20
)

// DefaultMaxBytes bounds live result bytes when Options.MaxBytes is 0.
const DefaultMaxBytes = 256 << 20

// Options configures Open.
type Options struct {
	// Dir is the store directory, created if missing.
	Dir string
	// MaxBytes bounds the live bytes held by KindResult entries; the oldest
	// results are evicted past it. 0 means DefaultMaxBytes; negative means
	// unlimited.
	MaxBytes int64
	// MaxAge evicts KindResult entries older than this on Put/GC; 0 keeps
	// results forever.
	MaxAge time.Duration
	// NoSync skips the fsync after each append. Only tests and benchmarks
	// should set it: a hard kill may then lose recently acknowledged writes
	// (never corrupt older ones).
	NoSync bool

	// Now overrides the clock used to stamp and age records; nil means
	// time.Now. Tests (and the daemon GC-ticker tests in auditd) inject a
	// fake clock here to exercise MaxAge eviction without real waiting.
	Now func() time.Time

	// OpenFile overrides how segment files (compaction temp files included)
	// are opened; nil means os.OpenFile. This is the fault-injection seam:
	// internal/faultinject supplies implementations that fail, shorten, or
	// corrupt chosen writes. Only tests and chaos drills should set it.
	OpenFile func(name string, flag int, perm os.FileMode) (File, error)
}

// File is the store's view of a segment file; *os.File satisfies it, and
// Options.OpenFile may substitute a fault-injecting implementation.
type File interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
	Close() error
}

// RecoveryStats reports what Open found while replaying the segment.
type RecoveryStats struct {
	// Entries is the number of live entries recovered.
	Entries int
	// RecordsScanned counts every well-formed record replayed, including
	// superseded versions and tombstones.
	RecordsScanned int
	// TruncatedBytes is the size of the torn tail dropped (0 for a clean
	// log).
	TruncatedBytes int64
	// QuarantinedBytes is the total size of mid-segment corrupt ranges that
	// recovery skipped after resyncing to a later valid record. Quarantined
	// bytes stay in the file as dead space until compaction rewrites it.
	QuarantinedBytes int64
	// QuarantinedRanges counts the skipped corrupt ranges.
	QuarantinedRanges int
}

// Stats is a point-in-time snapshot of the store counters.
type Stats struct {
	Entries     int
	LiveBytes   int64 // bytes of live records (all kinds)
	ResultBytes int64 // bytes of live KindResult records (the eviction budget)
	FileBytes   int64 // segment size on disk, dead records included
	DeadBytes   int64 // bytes held by superseded/tombstoned records
	Puts        int64
	Deletes     int64
	Evictions   int64
	Compactions int64
	Recovery    RecoveryStats
	// PutLatency and GetLatency are latency distributions over every Put
	// and Get call (fsync included), for the auditd_store_*_seconds
	// histograms.
	PutLatency telemetry.HistogramSnapshot
	GetLatency telemetry.HistogramSnapshot
}

// EntryInfo describes one live entry, for `indaas store ls`.
type EntryInfo struct {
	Key  string
	Kind Kind
	Size int // value bytes
	Time time.Time
}

// entry locates a live record inside the segment.
type entry struct {
	off    int64 // record start
	recLen int64 // full record length (header + key + value)
	valLen int
	kind   Kind
	unix   int64 // write time, nanoseconds
}

// Store is the on-disk store. Safe for concurrent use by one process; do not
// open the same directory from two processes at once.
type Store struct {
	opts     Options
	path     string
	openFile func(name string, flag int, perm os.FileMode) (File, error)

	mu          sync.Mutex
	f           File
	size        int64 // current segment size (append offset)
	index       map[string]entry
	order       []string // keys in append order (may contain dead keys)
	liveBytes   int64
	resultBytes int64
	deadBytes   int64
	recovery    RecoveryStats
	puts        int64
	deletes     int64
	evictions   int64
	compactions int64
	closed      bool

	// Latency histograms are internally atomic and live outside mu so
	// ObserveSince in Put/Get also captures lock-wait time.
	putLatency telemetry.Histogram
	getLatency telemetry.Histogram
}

// Open opens (or creates) the store in opts.Dir, replaying the segment into
// memory. A torn tail — the residue of a crash mid-append — is detected by
// checksum, truncated away, and reported in Recovery(); entries written
// before it are unaffected.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("store: Options.Dir is required")
	}
	if opts.MaxBytes == 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		opts:  opts,
		path:  filepath.Join(opts.Dir, segmentName),
		index: make(map[string]entry),
	}
	s.openFile = opts.OpenFile
	if s.openFile == nil {
		s.openFile = func(name string, flag int, perm os.FileMode) (File, error) {
			return os.OpenFile(name, flag, perm)
		}
	}
	// A crash between compaction's fsync and rename leaves a stale temp
	// segment; it holds nothing the real segment doesn't, so drop it.
	os.Remove(s.path + ".tmp")
	f, err := s.openFile(s.path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.f = f
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// recover replays the segment, building the index. A corrupt record is
// handled by where it sits: mid-segment corruption (bad media, a torn
// write later overwritten partially) is quarantined — recovery resyncs to
// the next checksummed record and keeps everything after it — while
// corruption with no valid record behind it is the classic torn tail and
// is truncated in place so later appends continue from a verified prefix.
func (s *Store) recover() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	size := fi.Size()
	if size < int64(len(fileMagic)) {
		// Empty store, or a creation torn before the magic finished; size is
		// the residue dropped (0 for a genuinely fresh file).
		s.recovery.TruncatedBytes = size
		return s.reset()
	}
	magic := make([]byte, len(fileMagic))
	if _, err := s.f.ReadAt(magic, 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if string(magic) != fileMagic {
		return fmt.Errorf("store: %s is not an indaas store segment", s.path)
	}

	off := int64(len(fileMagic))
	for off < size {
		rec, key, _, err := readRecordAt(s.f, off, size)
		if err != nil {
			next := nextValidRecord(s.f, off+1, size)
			if next < 0 {
				// No intact record follows: torn tail, drop it. The bytes
				// before off were fully verified.
				s.recovery.TruncatedBytes = size - off
				break
			}
			// An intact record follows: quarantine the corrupt range as
			// dead bytes and carry on, so one bad record cannot take the
			// rest of the segment down with it.
			s.recovery.QuarantinedBytes += next - off
			s.recovery.QuarantinedRanges++
			s.deadBytes += next - off
			off = next
			continue
		}
		s.recovery.RecordsScanned++
		s.applyReplayed(string(key), entry{
			off: off, recLen: rec.recLen, valLen: int(rec.valLen), kind: rec.kind, unix: rec.unix,
		})
		off += rec.recLen
	}
	s.size = off
	if s.recovery.TruncatedBytes > 0 {
		if err := s.f.Truncate(s.size); err != nil {
			return fmt.Errorf("store: truncating torn tail: %w", err)
		}
		if !s.opts.NoSync {
			if err := s.f.Sync(); err != nil {
				return fmt.Errorf("store: %w", err)
			}
		}
	}
	s.recovery.Entries = len(s.index)
	return nil
}

// reset initializes an empty segment (fresh store, or torn-before-magic).
func (s *Store) reset() error {
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := s.f.WriteAt([]byte(fileMagic), 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if !s.opts.NoSync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	s.size = int64(len(fileMagic))
	return nil
}

// applyReplayed folds one replayed record into the index with last-write-wins
// semantics, maintaining the live/dead byte accounting.
func (s *Store) applyReplayed(key string, e entry) {
	if old, ok := s.index[key]; ok {
		s.liveBytes -= old.recLen
		if old.kind == KindResult {
			s.resultBytes -= old.recLen
		}
		s.deadBytes += old.recLen
	} else if e.kind != kindTombstone {
		s.order = append(s.order, key)
	}
	if e.kind == kindTombstone {
		delete(s.index, key)
		s.deadBytes += e.recLen
		return
	}
	s.index[key] = e
	s.liveBytes += e.recLen
	if e.kind == KindResult {
		s.resultBytes += e.recLen
	}
}

// recordHeader is the decoded fixed prefix of one record.
type recordHeader struct {
	kind   Kind
	unix   int64
	keyLen int
	valLen uint32
	recLen int64
}

var errCorrupt = errors.New("store: corrupt record")

// readRecordAt reads and verifies the record starting at off in a segment
// of the given size.
func readRecordAt(f io.ReaderAt, off, size int64) (recordHeader, []byte, []byte, error) {
	return readRecord(io.NewSectionReader(f, off, size-off), size-off)
}

// nextValidRecord scans forward from start for the next offset at which a
// fully checksummed record begins, or -1 when none follows. Candidates are
// cheap to reject: almost every misaligned offset fails the kind/length
// sanity checks after a header-sized read, long before the CRC runs.
func nextValidRecord(f io.ReaderAt, start, size int64) int64 {
	for off := start; off+headerSize <= size; off++ {
		if _, _, _, err := readRecordAt(f, off, size); err == nil {
			return off
		}
	}
	return -1
}

// readRecord reads and verifies one record. io.EOF means a clean end of
// segment; any other error means the remaining bytes are torn or corrupt.
// remaining is the byte budget to the end of the file, used to reject
// headers whose lengths point past it.
func readRecord(r io.Reader, remaining int64) (recordHeader, []byte, []byte, error) {
	var h recordHeader
	if remaining == 0 {
		return h, nil, nil, io.EOF
	}
	if remaining < headerSize {
		return h, nil, nil, errCorrupt
	}
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return h, nil, nil, errCorrupt
	}
	crc := binary.BigEndian.Uint32(hdr[0:4])
	h.kind = Kind(hdr[4])
	h.unix = int64(binary.BigEndian.Uint64(hdr[5:13]))
	h.keyLen = int(binary.BigEndian.Uint16(hdr[13:15]))
	h.valLen = binary.BigEndian.Uint32(hdr[15:19])
	switch h.kind {
	case KindResult, KindSnapshot, KindMeta, KindJob, kindTombstone:
	default:
		return h, nil, nil, errCorrupt
	}
	if h.keyLen == 0 || h.valLen > maxValLen {
		return h, nil, nil, errCorrupt
	}
	h.recLen = int64(headerSize) + int64(h.keyLen) + int64(h.valLen)
	if h.recLen > remaining {
		return h, nil, nil, errCorrupt
	}
	body := make([]byte, int(h.keyLen)+int(h.valLen))
	if _, err := io.ReadFull(r, body); err != nil {
		return h, nil, nil, errCorrupt
	}
	sum := crc32.NewIEEE()
	sum.Write(hdr[4:])
	sum.Write(body)
	if sum.Sum32() != crc {
		return h, nil, nil, errCorrupt
	}
	return h, body[:h.keyLen], body[h.keyLen:], nil
}

// encodeRecord serializes one record, checksummed.
func encodeRecord(kind Kind, unix int64, key string, val []byte) []byte {
	buf := make([]byte, headerSize+len(key)+len(val))
	buf[4] = byte(kind)
	binary.BigEndian.PutUint64(buf[5:13], uint64(unix))
	binary.BigEndian.PutUint16(buf[13:15], uint16(len(key)))
	binary.BigEndian.PutUint32(buf[15:19], uint32(len(val)))
	copy(buf[headerSize:], key)
	copy(buf[headerSize+len(key):], val)
	binary.BigEndian.PutUint32(buf[0:4], crc32.ChecksumIEEE(buf[4:]))
	return buf
}

// Put stores val under key, superseding any previous value. It returns the
// keys of entries evicted to keep results within the size/age budget, so the
// caller can mirror the evictions into its in-memory cache.
func (s *Store) Put(key string, kind Kind, val []byte) ([]string, error) {
	defer s.putLatency.ObserveSince(time.Now())
	if len(key) == 0 || len(key) > 0xFFFF {
		return nil, fmt.Errorf("store: key length %d out of range", len(key))
	}
	if int64(len(val)) > maxValLen {
		return nil, fmt.Errorf("store: value of %d bytes exceeds the %d-byte cap", len(val), maxValLen)
	}
	if kind != KindResult && kind != KindSnapshot && kind != KindMeta && kind != KindJob {
		return nil, fmt.Errorf("store: cannot put entries of kind %s", kind)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("store: closed")
	}
	if err := s.appendLocked(kind, key, val); err != nil {
		return nil, err
	}
	s.puts++
	evicted, err := s.enforceBudgetLocked()
	if err != nil {
		return evicted, err
	}
	if err := s.syncLocked(); err != nil {
		return evicted, err
	}
	return evicted, s.maybeCompactLocked()
}

// appendLocked writes one live record and updates the index.
func (s *Store) appendLocked(kind Kind, key string, val []byte) error {
	unix := s.opts.Now().UnixNano()
	rec := encodeRecord(kind, unix, key, val)
	if _, err := s.f.WriteAt(rec, s.size); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	e := entry{off: s.size, recLen: int64(len(rec)), valLen: len(val), kind: kind, unix: unix}
	s.size += e.recLen
	s.applyReplayed(key, e)
	return nil
}

// appendTombstoneLocked records a deletion for key (which must be live).
func (s *Store) appendTombstoneLocked(key string) error {
	rec := encodeRecord(kindTombstone, s.opts.Now().UnixNano(), key, nil)
	if _, err := s.f.WriteAt(rec, s.size); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	e := entry{off: s.size, recLen: int64(len(rec)), kind: kindTombstone}
	s.size += e.recLen
	s.applyReplayed(key, e)
	return nil
}

// enforceBudgetLocked evicts the oldest KindResult entries until the size
// and age budgets hold, returning the evicted keys.
func (s *Store) enforceBudgetLocked() ([]string, error) {
	var evicted []string
	cutoff := int64(0)
	if s.opts.MaxAge > 0 {
		cutoff = s.opts.Now().Add(-s.opts.MaxAge).UnixNano()
	}
	// order is first-append-ordered; overwrites can make write times locally
	// non-monotonic, so the walk covers every live result rather than
	// stopping at the first young entry. Size eviction takes the front-most
	// (oldest-appended) results first.
	for i := 0; i < len(s.order); i++ {
		key := s.order[i]
		e, ok := s.index[key]
		if !ok || e.kind != KindResult {
			continue
		}
		overSize := s.opts.MaxBytes > 0 && s.resultBytes > s.opts.MaxBytes
		tooOld := cutoff > 0 && e.unix < cutoff
		if !overSize && !tooOld {
			continue
		}
		if err := s.appendTombstoneLocked(key); err != nil {
			return evicted, err
		}
		s.evictions++
		evicted = append(evicted, key)
	}
	s.compactOrderLocked()
	return evicted, nil
}

// compactOrderLocked drops dead and duplicate keys from the append-order
// list once enough accumulate, keeping budget walks linear in live entries.
// Duplicates arise when a deleted/evicted key is later re-put: the re-put
// appends the key again because the index no longer remembers the first
// occurrence.
func (s *Store) compactOrderLocked() {
	if len(s.order) < 2*len(s.index)+64 {
		return
	}
	seen := make(map[string]bool, len(s.index))
	live := s.order[:0]
	for _, key := range s.order {
		if _, ok := s.index[key]; ok && !seen[key] {
			seen[key] = true
			live = append(live, key)
		}
	}
	s.order = live
}

// syncLocked flushes the segment unless the store was opened with NoSync.
func (s *Store) syncLocked() error {
	if s.opts.NoSync {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Get returns the value stored under key, verifying its checksum.
func (s *Store) Get(key string) ([]byte, Kind, bool, error) {
	defer s.getLatency.ObserveSince(time.Now())
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 0, false, errors.New("store: closed")
	}
	e, ok := s.index[key]
	if !ok {
		return nil, 0, false, nil
	}
	r := io.NewSectionReader(s.f, e.off, e.recLen)
	_, gotKey, val, err := readRecord(r, e.recLen)
	if err != nil {
		return nil, 0, false, fmt.Errorf("store: entry %q at offset %d failed verification: %w", key, e.off, err)
	}
	if string(gotKey) != key {
		return nil, 0, false, fmt.Errorf("store: entry %q at offset %d holds key %q", key, e.off, gotKey)
	}
	return val, e.kind, true, nil
}

// Delete removes key, appending a tombstone. Deleting an absent key is a
// no-op.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	if _, ok := s.index[key]; !ok {
		return nil
	}
	if err := s.appendTombstoneLocked(key); err != nil {
		return err
	}
	s.deletes++
	if err := s.syncLocked(); err != nil {
		return err
	}
	return s.maybeCompactLocked()
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Entries lists every live entry, oldest first.
func (s *Store) Entries() []EntryInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]EntryInfo, 0, len(s.index))
	for key, e := range s.index {
		out = append(out, EntryInfo{Key: key, Kind: e.kind, Size: e.valLen, Time: time.Unix(0, e.unix)})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Time.Equal(out[j].Time) {
			return out[i].Time.Before(out[j].Time)
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Recovery reports what Open found while replaying the segment.
func (s *Store) Recovery() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:     len(s.index),
		LiveBytes:   s.liveBytes,
		ResultBytes: s.resultBytes,
		FileBytes:   s.size,
		DeadBytes:   s.deadBytes,
		Puts:        s.puts,
		Deletes:     s.deletes,
		Evictions:   s.evictions,
		Compactions: s.compactions,
		Recovery:    s.recovery,
		PutLatency:  s.putLatency.Snapshot(),
		GetLatency:  s.getLatency.Snapshot(),
	}
}

// GC applies the size/age eviction policy immediately and compacts the
// segment if enough of it is dead. It returns the evicted keys.
func (s *Store) GC() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("store: closed")
	}
	evicted, err := s.enforceBudgetLocked()
	if err != nil {
		return evicted, err
	}
	if len(evicted) > 0 {
		if err := s.syncLocked(); err != nil {
			return evicted, err
		}
	}
	return evicted, s.maybeCompactLocked()
}

// Compact rewrites the segment down to its live records unconditionally.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	return s.compactLocked()
}

// maybeCompactLocked compacts when the dead fraction justifies the rewrite.
func (s *Store) maybeCompactLocked() error {
	if s.deadBytes < compactMinDead || s.deadBytes*2 < s.size {
		return nil
	}
	return s.compactLocked()
}

// compactLocked rewrites live records into a temp segment and atomically
// renames it into place. A crash at any point leaves either the old or the
// new complete segment.
func (s *Store) compactLocked() error {
	tmpPath := s.path + ".tmp"
	tmp, err := s.openFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after the rename succeeds

	if _, err := tmp.WriteAt([]byte(fileMagic), 0); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	// Rewrite live records in append order so relative ages survive; index
	// offsets are rebuilt as we go.
	off := int64(len(fileMagic))
	newIndex := make(map[string]entry, len(s.index))
	newOrder := make([]string, 0, len(s.index))
	var liveBytes, resultBytes int64
	for _, key := range s.order {
		e, ok := s.index[key]
		if !ok {
			continue
		}
		if _, done := newIndex[key]; done {
			// A delete-then-re-put leaves the key twice in s.order; write
			// its (single) live record once.
			continue
		}
		r := io.NewSectionReader(s.f, e.off, e.recLen)
		_, _, val, err := readRecord(r, e.recLen)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact: entry %q: %w", key, err)
		}
		rec := encodeRecord(e.kind, e.unix, key, val)
		if _, err := tmp.WriteAt(rec, off); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact: %w", err)
		}
		ne := e
		ne.off = off
		ne.recLen = int64(len(rec))
		off += ne.recLen
		newIndex[key] = ne
		newOrder = append(newOrder, key)
		liveBytes += ne.recLen
		if ne.kind == KindResult {
			resultBytes += ne.recLen
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	syncDir(s.opts.Dir)
	f, err := s.openFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: reopening segment: %w", err)
	}
	s.f.Close()
	s.f = f
	s.size = off
	s.index = newIndex
	s.order = newOrder
	s.liveBytes = liveBytes
	s.resultBytes = resultBytes
	s.deadBytes = 0
	s.compactions++
	return nil
}

// syncDir fsyncs a directory so a rename within it is durable; best-effort
// on filesystems that do not support it.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// VerifyResult reports a full integrity scan of the segment.
type VerifyResult struct {
	// Records counts every well-formed record, superseded ones included.
	Records int
	// Entries counts live entries after replay.
	Entries int
	// Bytes is the verified byte count (magic included).
	Bytes int64
	// TornBytes is the size of an unverifiable tail, 0 when the whole
	// segment checks out.
	TornBytes int64
	// QuarantinedBytes is the size of mid-segment corrupt ranges a recovery
	// would skip (dead space until compaction); the records around them are
	// intact.
	QuarantinedBytes int64
}

// OK reports whether the scan verified the entire segment. Quarantined
// ranges do not fail verification: they are already-detected dead space
// that recovery routes around.
func (v VerifyResult) OK() bool { return v.TornBytes == 0 }

// Verify re-reads the whole segment from disk, checking every record's
// checksum, and reports what a recovery at this instant would find.
func (s *Store) Verify() (VerifyResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return VerifyResult{}, errors.New("store: closed")
	}
	return scanSegment(s.f, s.size), nil
}

// VerifyDir scans a store directory's segment read-only, WITHOUT opening
// the store: Open's recovery truncates (and fsyncs away) a torn tail, so a
// verification that went through Open would destroy the very evidence it is
// meant to report. A missing segment verifies as an empty store.
func VerifyDir(dir string) (VerifyResult, error) {
	f, err := os.Open(filepath.Join(dir, segmentName))
	if os.IsNotExist(err) {
		return VerifyResult{}, nil
	}
	if err != nil {
		return VerifyResult{}, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return VerifyResult{}, fmt.Errorf("store: %w", err)
	}
	return scanSegment(f, fi.Size()), nil
}

// scanSegment checksums every record in a segment of the given size,
// replaying live entries; it never writes.
func scanSegment(f io.ReaderAt, size int64) VerifyResult {
	var out VerifyResult
	magic := make([]byte, len(fileMagic))
	if size < int64(len(fileMagic)) {
		out.TornBytes = size
		return out
	}
	if _, err := f.ReadAt(magic, 0); err != nil || string(magic) != fileMagic {
		out.TornBytes = size
		return out
	}
	live := make(map[string]bool)
	off := int64(len(fileMagic))
	for off < size {
		rec, key, _, err := readRecordAt(f, off, size)
		if err != nil {
			// Mirror recovery: resync past mid-segment corruption, report a
			// torn tail only when no intact record follows.
			next := nextValidRecord(f, off+1, size)
			if next < 0 {
				out.TornBytes = size - off
				break
			}
			out.QuarantinedBytes += next - off
			off = next
			continue
		}
		out.Records++
		if rec.kind == kindTombstone {
			delete(live, string(key))
		} else {
			live[string(key)] = true
		}
		off += rec.recLen
	}
	out.Bytes = off
	out.Entries = len(live)
	return out
}

// Close flushes and closes the segment. Further calls on the store fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}
