package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fakeClock is a deterministic, strictly increasing time source.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func openTest(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	if opts.Now == nil {
		opts.Now = newFakeClock().now
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustPut(t *testing.T, s *Store, key string, kind Kind, val string) []string {
	t.Helper()
	evicted, err := s.Put(key, kind, []byte(val))
	if err != nil {
		t.Fatalf("put %q: %v", key, err)
	}
	return evicted
}

func mustGet(t *testing.T, s *Store, key string) (string, Kind) {
	t.Helper()
	val, kind, ok, err := s.Get(key)
	if err != nil {
		t.Fatalf("get %q: %v", key, err)
	}
	if !ok {
		t.Fatalf("get %q: missing", key)
	}
	return string(val), kind
}

func TestPutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir})
	mustPut(t, s, "a", KindResult, "alpha")
	mustPut(t, s, "b", KindSnapshot, "beta")
	mustPut(t, s, "c", KindMeta, "gamma")
	mustPut(t, s, "a", KindResult, "alpha-2") // overwrite

	if v, k := mustGet(t, s, "a"); v != "alpha-2" || k != KindResult {
		t.Fatalf("a = %q/%v", v, k)
	}
	if err := s.Delete("b"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("nope"); err != nil {
		t.Fatalf("deleting an absent key: %v", err)
	}
	if _, _, ok, _ := s.Get("b"); ok {
		t.Fatal("b survived delete")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the index is rebuilt from the log with last-write-wins.
	s2 := openTest(t, Options{Dir: dir})
	rec := s2.Recovery()
	if rec.Entries != 2 || rec.TruncatedBytes != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	if rec.RecordsScanned != 5 { // 4 puts + 1 tombstone
		t.Fatalf("records scanned = %d", rec.RecordsScanned)
	}
	if v, _ := mustGet(t, s2, "a"); v != "alpha-2" {
		t.Fatalf("a after reopen = %q", v)
	}
	if v, k := mustGet(t, s2, "c"); v != "gamma" || k != KindMeta {
		t.Fatalf("c after reopen = %q/%v", v, k)
	}
	if _, _, ok, _ := s2.Get("b"); ok {
		t.Fatal("b resurrected by reopen")
	}
}

func TestEntriesListing(t *testing.T) {
	s := openTest(t, Options{})
	mustPut(t, s, "first", KindResult, "1")
	mustPut(t, s, "second", KindSnapshot, strings.Repeat("x", 100))
	entries := s.Entries()
	if len(entries) != 2 {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].Key != "first" || entries[1].Key != "second" {
		t.Fatalf("order = %+v", entries)
	}
	if entries[1].Size != 100 || entries[1].Kind != KindSnapshot {
		t.Fatalf("second = %+v", entries[1])
	}
	if !entries[0].Time.Before(entries[1].Time) {
		t.Fatalf("times not increasing: %+v", entries)
	}
}

func TestSizeEvictionOldestResultsFirst(t *testing.T) {
	clock := newFakeClock()
	val := strings.Repeat("v", 100)
	// Each record is headerSize + len(key) + 100 ≈ 122 bytes; budget three.
	s := openTest(t, Options{Dir: t.TempDir(), MaxBytes: 380, Now: clock.now})
	mustPut(t, s, "snap", KindSnapshot, strings.Repeat("s", 4000)) // never evicted
	var evicted []string
	for i := 0; i < 6; i++ {
		evicted = append(evicted, mustPut(t, s, fmt.Sprintf("r%d", i), KindResult, val)...)
	}
	if len(evicted) != 3 || evicted[0] != "r0" || evicted[1] != "r1" || evicted[2] != "r2" {
		t.Fatalf("evicted = %v", evicted)
	}
	for _, key := range []string{"r3", "r4", "r5", "snap"} {
		mustGet(t, s, key)
	}
	if st := s.Stats(); st.Evictions != 3 || st.ResultBytes > 380 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAgeEviction(t *testing.T) {
	clock := newFakeClock()
	s := openTest(t, Options{Dir: t.TempDir(), MaxBytes: -1, MaxAge: time.Hour, Now: clock.now})
	mustPut(t, s, "old", KindResult, "1")
	mustPut(t, s, "snap", KindSnapshot, "s")
	clock.advance(2 * time.Hour)
	evicted, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != "old" {
		t.Fatalf("evicted = %v", evicted)
	}
	if _, _, ok, _ := s.Get("old"); ok {
		t.Fatal("old survived age GC")
	}
	mustGet(t, s, "snap") // snapshots are exempt from the age policy
}

func TestCompactionShrinksSegment(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir, MaxBytes: -1})
	big := strings.Repeat("z", 10_000)
	for i := 0; i < 50; i++ {
		mustPut(t, s, "churn", KindResult, big) // 49 dead versions
	}
	mustPut(t, s, "keep", KindResult, "kept")
	before := s.Stats().FileBytes
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.FileBytes >= before/10 {
		t.Fatalf("compaction left %d of %d bytes", after.FileBytes, before)
	}
	if after.Compactions == 0 {
		t.Fatal("compaction not counted")
	}
	if v, _ := mustGet(t, s, "churn"); v != big {
		t.Fatal("churn lost its live value")
	}
	if v, _ := mustGet(t, s, "keep"); v != "kept" {
		t.Fatal("keep lost")
	}
	s.Close()
	s2 := openTest(t, Options{Dir: dir})
	if v, _ := mustGet(t, s2, "keep"); v != "kept" {
		t.Fatal("keep lost across reopen")
	}
	if s2.Len() != 2 {
		t.Fatalf("len after compact+reopen = %d", s2.Len())
	}
}

func TestCompactionAfterDeleteAndReput(t *testing.T) {
	// Regression: a deleted (or evicted) key that is later re-put appears
	// twice in the append-order list; compaction must still write its live
	// record exactly once and keep the byte accounting honest.
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir, MaxBytes: -1})
	mustPut(t, s, "k", KindResult, "first")
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "k", KindResult, "second")
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	wantRec := int64(headerSize + len("k") + len("second"))
	if st.LiveBytes != wantRec || st.ResultBytes != wantRec || st.DeadBytes != 0 {
		t.Fatalf("accounting after compact = %+v, want %d live bytes", st, wantRec)
	}
	v, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if v.Records != 1 || v.Entries != 1 {
		t.Fatalf("compacted segment holds %d records (%d entries), want 1", v.Records, v.Entries)
	}
	if val, _ := mustGet(t, s, "k"); val != "second" {
		t.Fatalf("k = %q", val)
	}
	s.Close()
	s2 := openTest(t, Options{Dir: dir})
	if rec := s2.Recovery(); rec.RecordsScanned != 1 || rec.Entries != 1 {
		t.Fatalf("recovery after compact = %+v", rec)
	}
}

func TestVerifyDirDoesNotMutate(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir})
	mustPut(t, s, "a", KindResult, "alpha")
	mustPut(t, s, "b", KindResult, "beta")
	s.Close()

	path := filepath.Join(dir, segmentName)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := blob[:len(blob)-3]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	// VerifyDir must report the torn tail…
	v, err := VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if v.OK() || v.Entries != 1 || v.TornBytes == 0 {
		t.Fatalf("verify of torn segment = %+v", v)
	}
	// …without truncating it: the evidence survives for a second look.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(torn) {
		t.Fatalf("VerifyDir changed the segment: %d → %d bytes", len(torn), len(after))
	}

	// A missing segment verifies as an empty store.
	empty, err := VerifyDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if !empty.OK() || empty.Entries != 0 {
		t.Fatalf("verify of missing segment = %+v", empty)
	}
}

func TestAutoCompaction(t *testing.T) {
	s := openTest(t, Options{Dir: t.TempDir(), MaxBytes: -1})
	big := strings.Repeat("z", 200_000)
	for i := 0; i < 20; i++ {
		mustPut(t, s, "churn", KindResult, big)
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no automatic compaction after %d bytes of churn (file %d bytes)", 20*200_000, st.FileBytes)
	}
	if v, _ := mustGet(t, s, "churn"); v != big {
		t.Fatal("live value lost by auto compaction")
	}
}

func TestVerifyCleanAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir})
	mustPut(t, s, "a", KindResult, "alpha")
	mustPut(t, s, "b", KindResult, "beta")
	v, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK() || v.Records != 2 || v.Entries != 2 {
		t.Fatalf("verify = %+v", v)
	}
	s.Close()

	// Flip a byte inside the second record's value: Verify must flag the
	// unverifiable region without touching the file.
	path := filepath.Join(dir, segmentName)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0xFF
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, Options{Dir: dir})
	if rec := s2.Recovery(); rec.Entries != 1 || rec.TruncatedBytes == 0 {
		t.Fatalf("recovery after corruption = %+v", rec)
	}
	mustGet(t, s2, "a")
	v2, err := s2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !v2.OK() || v2.Entries != 1 {
		t.Fatalf("verify after truncating recovery = %+v", v2)
	}
}

func TestOpenRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segmentName), []byte("definitely not a store segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("opened a non-store file without complaint")
	}
}

func TestPutValidation(t *testing.T) {
	s := openTest(t, Options{})
	if _, err := s.Put("", KindResult, []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
	if _, err := s.Put(strings.Repeat("k", 70_000), KindResult, []byte("v")); err == nil {
		t.Fatal("oversized key accepted")
	}
	if _, err := s.Put("k", kindTombstone, []byte("v")); err == nil {
		t.Fatal("tombstone kind accepted")
	}
}

func TestClosedStore(t *testing.T) {
	s := openTest(t, Options{})
	mustPut(t, s, "a", KindResult, "v")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := s.Put("b", KindResult, []byte("v")); err == nil {
		t.Fatal("put after close succeeded")
	}
	if _, _, _, err := s.Get("a"); err == nil {
		t.Fatal("get after close succeeded")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindResult:    "result",
		KindSnapshot:  "snapshot",
		KindMeta:      "meta",
		kindTombstone: "tombstone",
		Kind(42):      "kind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", uint8(k), got, want)
		}
	}
}

func TestOrderListCompaction(t *testing.T) {
	clock := newFakeClock()
	// Budget of one small record: every new put evicts all older results,
	// churning the append-order list through many dead keys.
	s := openTest(t, Options{Dir: t.TempDir(), MaxBytes: 130, Now: clock.now})
	for i := 0; i < 500; i++ {
		mustPut(t, s, fmt.Sprintf("key-%03d", i), KindResult, "payload")
	}
	s.mu.Lock()
	orderLen, indexLen := len(s.order), len(s.index)
	s.mu.Unlock()
	if orderLen > 2*indexLen+64 {
		t.Fatalf("order list grew to %d entries for %d live keys", orderLen, indexLen)
	}
	if got, want := s.Stats().Evictions, int64(500-indexLen); got != want {
		t.Fatalf("evictions = %d, want %d", got, want)
	}
}

func TestGCAfterBudgetAlreadyEnforced(t *testing.T) {
	clock := newFakeClock()
	big := strings.Repeat("x", 1_200_000)
	// Budget holds two big records; each further put evicts the oldest, and
	// by the fourth put the dead fraction crosses the compaction threshold.
	s := openTest(t, Options{Dir: t.TempDir(), MaxBytes: 2_500_000, Now: clock.now})
	for _, key := range []string{"a", "b", "c", "d"} {
		mustPut(t, s, key, KindResult, big)
	}
	evicted, err := s.GC() // budget already enforced by the puts
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 0 {
		t.Fatalf("GC evicted %v after Put already enforced the budget", evicted)
	}
	for _, gone := range []string{"a", "b"} {
		if _, _, ok, _ := s.Get(gone); ok {
			t.Fatalf("%s survived the size budget", gone)
		}
	}
	for _, kept := range []string{"c", "d"} {
		if v, _ := mustGet(t, s, kept); v != big {
			t.Fatalf("%s corrupted", kept)
		}
	}
	if st := s.Stats(); st.Compactions == 0 || st.Evictions != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTornCreationResets(t *testing.T) {
	dir := t.TempDir()
	// A file shorter than the magic is the residue of a crash during store
	// creation: Open must reinitialize it and report the dropped bytes.
	if err := os.WriteFile(filepath.Join(dir, segmentName), []byte(fileMagic[:5]), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTest(t, Options{Dir: dir})
	if rec := s.Recovery(); rec.Entries != 0 || rec.TruncatedBytes != 5 {
		t.Fatalf("recovery = %+v", rec)
	}
	mustPut(t, s, "a", KindResult, "alpha")
	if v, _ := mustGet(t, s, "a"); v != "alpha" {
		t.Fatalf("a = %q", v)
	}
}

func TestStaleTempSegmentIsDropped(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir})
	mustPut(t, s, "a", KindResult, "alpha")
	s.Close()
	// Simulate a crash between compaction's temp write and rename.
	if err := os.WriteFile(filepath.Join(dir, segmentName+".tmp"), []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, Options{Dir: dir})
	if v, _ := mustGet(t, s2, "a"); v != "alpha" {
		t.Fatalf("a = %q", v)
	}
	if _, err := os.Stat(filepath.Join(dir, segmentName+".tmp")); !os.IsNotExist(err) {
		t.Fatal("stale temp segment not removed")
	}
}
