package store

// Fault-injection tests: the store opened through internal/faultinject's
// filesystem seam must fail cleanly — surfacing the error, never corrupting
// earlier entries — and recover on reopen exactly as it would from a real
// ENOSPC, torn write, or silent bit flip.

import (
	"errors"
	"os"
	"strings"
	"syscall"
	"testing"

	"indaas/internal/faultinject"
)

// faultOpts routes every segment open through the injecting FS. The
// adapter closure is all it takes: faultinject.File satisfies store.File
// structurally, so neither package imports the other.
func faultOpts(dir string, fs *faultinject.FS) Options {
	return Options{Dir: dir, MaxBytes: -1, OpenFile: func(name string, flag int, perm os.FileMode) (File, error) {
		return fs.OpenFile(name, flag, perm)
	}}
}

func TestPutFailsCleanlyOnENOSPC(t *testing.T) {
	dir := t.TempDir()
	fs := &faultinject.FS{}
	s, err := Open(faultOpts(dir, fs)) // write 1: the segment magic
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "keep", KindResult, "survives")

	fs.FailWrites(3, 1, syscall.ENOSPC)
	if _, err := s.Put("doomed", KindResult, []byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	// The failed append must not damage the store: the old entry reads
	// back, the failed key is absent, and the next write lands normally.
	if v, _ := mustGet(t, s, "keep"); v != "survives" {
		t.Fatalf("keep = %q", v)
	}
	if _, _, ok, err := s.Get("doomed"); ok || err != nil {
		t.Fatalf("doomed: ok=%v err=%v, want absent", ok, err)
	}
	mustPut(t, s, "after", KindResult, "post-fault write")
	s.Close()

	s2 := openTest(t, Options{Dir: dir})
	if rec := s2.Recovery(); rec.Entries != 2 || rec.TruncatedBytes != 0 || rec.QuarantinedBytes != 0 {
		t.Fatalf("recovery after ENOSPC = %+v", rec)
	}
	if v, _ := mustGet(t, s2, "after"); v != "post-fault write" {
		t.Fatalf("after = %q", v)
	}
	s2.Close()
}

func TestShortWriteRecoversAsTornTail(t *testing.T) {
	dir := t.TempDir()
	fs := &faultinject.FS{}
	s, err := Open(faultOpts(dir, fs))
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "base", KindResult, "durable before the torn append")

	fs.ShortWrite(3)
	if _, err := s.Put("torn", KindResult, []byte("only half of this record reaches the disk")); err == nil {
		t.Fatal("short write reported success")
	}
	s.Close() // crash here: the half record is the segment's tail

	s2 := openTest(t, Options{Dir: dir})
	rec := s2.Recovery()
	if rec.Entries != 1 || rec.TruncatedBytes == 0 {
		t.Fatalf("recovery after short write = %+v, want 1 entry and a truncated tail", rec)
	}
	if v, _ := mustGet(t, s2, "base"); v != "durable before the torn append" {
		t.Fatalf("base = %q", v)
	}
	if _, _, ok, _ := s2.Get("torn"); ok {
		t.Fatal("half-written entry resolved after recovery")
	}
	s2.Close()
}

func TestSilentCorruptionCaughtByChecksum(t *testing.T) {
	fs := &faultinject.FS{}
	s, err := Open(faultOpts(t.TempDir(), fs))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	fs.CorruptWrite(2)
	if _, err := s.Put("flipped", KindResult, []byte("payload")); err != nil {
		t.Fatalf("silent corruption must not surface at write time: %v", err)
	}
	if _, _, _, err := s.Get("flipped"); err == nil || !strings.Contains(err.Error(), "failed verification") {
		t.Fatalf("Get err = %v, want checksum failure", err)
	}
	if v, err := s.Verify(); err != nil || v.OK() {
		t.Fatalf("verify = %+v, %v; want a detected fault", v, err)
	}
}

func TestSyncFailureSurfaces(t *testing.T) {
	fs := &faultinject.FS{}
	s, err := Open(faultOpts(t.TempDir(), fs))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	fs.FailSyncs(2, 1, nil) // sync 1 follows the magic write in reset
	if _, err := s.Put("unsynced", KindResult, []byte("x")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want the injected sync error", err)
	}
	// The append itself succeeded; the caller was warned durability is in
	// doubt but the value stays readable in this session.
	if v, _ := mustGet(t, s, "unsynced"); v != "x" {
		t.Fatalf("unsynced = %q", v)
	}
	mustPut(t, s, "next", KindResult, "sync works again")
}
