package agentsim

import (
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"indaas/internal/agent"
	"indaas/internal/auditd"
	"indaas/internal/deps"
	"indaas/internal/wire"
)

func newFleet(t *testing.T, cfg Config) *Fleet {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

func TestFleetBootstrap(t *testing.T) {
	f := newFleet(t, Config{K: 4, Seed: 7})
	if f.Size() != 16 {
		t.Fatalf("k=4 fat tree should have 16 servers, got %d", f.Size())
	}
	batches, err := f.Bootstrap()
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if len(batches) != f.Size() {
		t.Fatalf("want one batch per node, got %d", len(batches))
	}
	servers := f.Servers()
	for i, batch := range batches {
		kinds := map[deps.Kind]int{}
		for _, r := range batch {
			if got := r.Subject(); got != servers[i] {
				t.Fatalf("batch %d: record subject %q, want %q", i, got, servers[i])
			}
			kinds[r.Kind]++
		}
		// lshw walk: CPU, Disk, RAM, NIC, RAID.
		if kinds[deps.KindHardware] != 5 {
			t.Errorf("node %s: %d hardware records, want 5", servers[i], kinds[deps.KindHardware])
		}
		if kinds[deps.KindSoftware] != 1 {
			t.Errorf("node %s: %d software records, want 1", servers[i], kinds[deps.KindSoftware])
		}
		if kinds[deps.KindNetwork] == 0 {
			t.Errorf("node %s: no mined network records", servers[i])
		}
	}
	// The software record carries the service's dependency closure.
	var sw deps.Record
	for _, r := range batches[0] {
		if r.Kind == deps.KindSoftware {
			sw = r
		}
	}
	if len(sw.Software.Dep) != 3 {
		t.Errorf("svc closure %v, want 3 packages", sw.Software.Dep)
	}
}

func TestNodeCollectFiltersSubjects(t *testing.T) {
	f := newFleet(t, Config{K: 4})
	n := f.Node(f.Servers()[0])
	all, err := n.Collect(nil)
	if err != nil || len(all) == 0 {
		t.Fatalf("Collect(nil) = %d records, %v", len(all), err)
	}
	none, err := n.Collect([]string{"not-a-server"})
	if err != nil || len(none) != 0 {
		t.Fatalf("Collect(other) = %d records, %v; want none", len(none), err)
	}
	own, err := n.Collect([]string{n.Server})
	if err != nil || len(own) != len(all) {
		t.Fatalf("Collect(self) = %d records, %v; want %d", len(own), err, len(all))
	}
}

// TestSourceServesFleetNode proves a fleet node speaks the real Fig. 5a
// data-source protocol: agent.NewSource over TCP, wire-level collect.
func TestSourceServesFleetNode(t *testing.T) {
	f := newFleet(t, Config{K: 4})
	server := f.Servers()[3]
	srcs, err := f.Sources(server)
	if err != nil {
		t.Fatalf("Sources: %v", err)
	}
	defer srcs[0].Close()

	conn, err := wire.Dial(srcs[0].Addr())
	if err != nil {
		t.Fatalf("dial source: %v", err)
	}
	defer conn.Close()
	if err := conn.Send(agent.TypeCollectRequest, agent.CollectRequest{Kinds: []string{"hardware"}}); err != nil {
		t.Fatalf("send collect: %v", err)
	}
	var resp agent.CollectResponse
	if err := conn.Expect(agent.TypeCollectResponse, &resp); err != nil {
		t.Fatalf("collect response: %v", err)
	}
	if len(resp.Records) != 5 {
		t.Fatalf("collected %d hardware records over TCP, want 5", len(resp.Records))
	}
	for _, w := range resp.Records {
		rec, err := agent.FromWire(w)
		if err != nil {
			t.Fatalf("decoding %+v: %v", w, err)
		}
		if rec.Subject() != server {
			t.Fatalf("record subject %q, want %q", rec.Subject(), server)
		}
	}
}

func TestChurnDeterministicAndScoped(t *testing.T) {
	type sig struct {
		Server, Event string
		N             int
	}
	run := func(exclude ...string) []sig {
		f := newFleet(t, Config{K: 4, Seed: 3})
		c, err := f.ChurnStream(42, exclude...)
		if err != nil {
			t.Fatalf("ChurnStream: %v", err)
		}
		var out []sig
		for i := 0; i < 64; i++ {
			b, err := c.Next()
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			if len(b.Records) == 0 {
				t.Fatalf("churn batch %d is empty (%s on %s)", i, b.Event, b.Server)
			}
			out = append(out, sig{b.Server, b.Event, len(b.Records)})
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different churn sequences")
	}
	probe := newFleet(t, Config{K: 4, Seed: 3}).Servers()[0]
	for i, s := range run(probe) {
		if s.Server == probe {
			t.Fatalf("batch %d touched excluded server %s", i, probe)
		}
	}
}

func TestChurnEventsChangeObservations(t *testing.T) {
	f := newFleet(t, Config{K: 4})
	n := f.Node(f.Servers()[0])
	before, _ := n.Records()
	flap := n.FlapNIC()
	if flap.Kind != deps.KindHardware || flap.Hardware.Type != "NIC" {
		t.Fatalf("FlapNIC produced %+v", flap)
	}
	for _, r := range before {
		if r.Equal(flap) {
			t.Fatalf("flap reproduced an existing observation: %+v", flap)
		}
	}
	// Flapping back returns to a catalog model, not the same one.
	again := n.FlapNIC()
	if again.Equal(flap) {
		t.Fatal("second flap did not change the NIC")
	}

	up, err := n.Upgrade("openssl", "1.0.99")
	if err != nil {
		t.Fatalf("Upgrade: %v", err)
	}
	found := false
	for _, d := range up.Software.Dep {
		if d == "openssl=1.0.99" {
			found = true
		}
	}
	if !found {
		t.Fatalf("upgraded closure %v misses openssl=1.0.99", up.Software.Dep)
	}
	if _, err := n.Upgrade("nginx", "1.0"); err == nil {
		t.Fatal("upgrading a package that was never installed should fail")
	}

	recs, err := n.Reobserve(8)
	if err != nil || len(recs) == 0 {
		t.Fatalf("Reobserve = %d records, %v", len(recs), err)
	}
}

func TestRunPacesAndCounts(t *testing.T) {
	f := newFleet(t, Config{K: 4})
	var pushed int64
	counts := make(chan int, 4096)
	p := PusherFunc(func(ctx context.Context, records []deps.Record) error {
		counts <- len(records)
		return nil
	})
	stats, err := f.Run(context.Background(), p, RunConfig{
		Rate: 4000, Duration: 300 * time.Millisecond, Concurrency: 4,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	close(counts)
	for n := range counts {
		pushed += int64(n)
	}
	if stats.Records != pushed {
		t.Fatalf("stats.Records = %d, pusher saw %d", stats.Records, pushed)
	}
	if stats.Batches == 0 || stats.Errors != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// The pacer admits Rate records/sec; allow generous slack for CI but
	// catch runaway (unpaced) generation.
	max := int64(float64(stats.Elapsed.Seconds())*4000*1.5) + 64
	if stats.Records > max {
		t.Fatalf("admitted %d records in %v; pacing is broken (max %d)", stats.Records, stats.Elapsed, max)
	}
	if stats.PushP99 < stats.PushP50 {
		t.Fatalf("p99 %v < p50 %v", stats.PushP99, stats.PushP50)
	}
}

func TestRunReportsPushErrors(t *testing.T) {
	f := newFleet(t, Config{K: 4})
	p := PusherFunc(func(ctx context.Context, records []deps.Record) error {
		return fmt.Errorf("refused")
	})
	stats, err := f.Run(context.Background(), p, RunConfig{Rate: 1000, Duration: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Errors == 0 || stats.Records != 0 {
		t.Fatalf("stats = %+v; want only errors", stats)
	}
}

// TestFleetStreamsIntoWatchedDaemon wires the whole pipeline: bootstrap a
// fleet into a live auditd over HTTP, subscribe a watcher to a deployment,
// replay churn through the retrying client, and assert the watcher receives
// delta re-audits while the churn stays incremental.
func TestFleetStreamsIntoWatchedDaemon(t *testing.T) {
	f := newFleet(t, Config{K: 4, Seed: 11})
	s := auditd.New(auditd.Config{Workers: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	cl := auditd.NewClient(hs.URL, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	batches, err := f.Bootstrap()
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	for _, b := range batches {
		if _, err := cl.Ingest(ctx, auditd.WireRecords(b)); err != nil {
			t.Fatalf("bootstrap ingest: %v", err)
		}
	}

	// Watch two alternative deployments over the fleet's first four
	// servers; churn is excluded from them, then we touch one directly —
	// only the touched deployment is dirty, so the re-audit can splice.
	servers := f.Servers()
	req := &auditd.SubmitRequest{
		Title: "fleet watch",
		Deployments: []auditd.DeploymentWire{
			{Name: "primary", Servers: []string{servers[0], servers[1]}},
			{Name: "secondary", Servers: []string{servers[2], servers[3]}},
		},
	}
	w, err := cl.Watch(ctx, req)
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	defer w.Close()
	first, err := w.Next()
	if err != nil {
		t.Fatalf("initial watch event: %v", err)
	}
	if first.Report == nil {
		t.Fatalf("initial event carries no report: %+v", first)
	}

	push := PusherFunc(func(ctx context.Context, records []deps.Record) error {
		_, err := cl.Ingest(ctx, auditd.WireRecords(records))
		return err
	})
	stats, err := f.Run(ctx, push, RunConfig{
		Rate: 2000, Duration: 400 * time.Millisecond, Concurrency: 8,
		Exclude: []string{servers[0], servers[1], servers[2], servers[3]},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Records == 0 || stats.Errors != 0 {
		t.Fatalf("churn stats = %+v", stats)
	}

	// Unwatched churn must not have produced events; now flap a watched NIC.
	if _, err := cl.Ingest(ctx, auditd.WireRecords([]deps.Record{f.Node(servers[0]).FlapNIC()})); err != nil {
		t.Fatalf("probe ingest: %v", err)
	}
	ev, err := w.Next()
	if err != nil {
		t.Fatalf("watch event after probe: %v", err)
	}
	if ev.Report == nil || ev.Error != "" {
		t.Fatalf("re-audit event = %+v", ev)
	}
	if len(ev.Trigger) == 0 || ev.Trigger[0] != servers[0] {
		t.Fatalf("event trigger %v, want %s", ev.Trigger, servers[0])
	}
	if !ev.Job.DeltaHit {
		t.Fatalf("re-audit was a cold recompute: %+v", ev.Job)
	}
	if len(ev.Job.DirtySubjects) == 0 {
		t.Fatalf("splice listed no dirty subjects: %+v", ev.Job)
	}

	// Flap the same NIC twice more, cycling it back to an already-observed
	// model. The depdb log now holds repeated observations of the same slot;
	// the re-audits must keep succeeding (a probe flapping forever is the
	// steady state of continuous acquisition).
	for i := 0; i < 2; i++ {
		if _, err := cl.Ingest(ctx, auditd.WireRecords([]deps.Record{f.Node(servers[0]).FlapNIC()})); err != nil {
			t.Fatalf("flap %d ingest: %v", i+2, err)
		}
		ev, err := w.Next()
		if err != nil {
			t.Fatalf("watch event after flap %d: %v", i+2, err)
		}
		if ev.Report == nil || ev.Error != "" {
			t.Fatalf("re-audit after flap %d = %+v", i+2, ev)
		}
	}
}
