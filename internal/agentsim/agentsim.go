// Package agentsim simulates a fleet of data-source agents over a fat-tree
// datacenter — the live-acquisition side of the paper's Fig. 1: every server
// runs the three §3 acquisition modules (hardware inventory, software
// package resolver, traffic-based network miner) behind the agent.Acquirer
// interface, and a churn generator replays the small, continuous dependency
// changes (flapping NICs, rolling software upgrades, re-observed flows) that
// the delta audit engine was built to absorb.
//
// The fleet is deterministic in its seed: the same Config yields the same
// machines, package universes and churn sequence, so load tests and smoke
// scripts are reproducible.
package agentsim

import (
	"fmt"
	"math/rand"
	"sync"

	"indaas/internal/agent"
	"indaas/internal/deps"
	"indaas/internal/hwinv"
	"indaas/internal/netflow"
	"indaas/internal/swpkg"
	"indaas/internal/topology"
)

// Config sizes the fleet.
type Config struct {
	// K is the fat-tree arity; the fleet has k³/4 servers (default 8 → 128).
	K int
	// Seed makes machines, universes and churn deterministic (default 1).
	Seed int64
	// FlowsPerServer is how many Internet flows each server's miner observes
	// at bootstrap (default 32).
	FlowsPerServer int
	// MinFlows is the miner's noise filter (default 2).
	MinFlows int
}

func (c *Config) defaults() {
	if c.K <= 0 {
		c.K = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FlowsPerServer <= 0 {
		c.FlowsPerServer = 32
	}
	if c.MinFlows <= 0 {
		c.MinFlows = 2
	}
}

// servicePackages is the package universe every node bootstraps with: a
// service binary over a small shared base, versioned so rolling upgrades
// have something to bump.
var servicePackages = []swpkg.Package{
	{Name: "libc", Version: "2.19"},
	{Name: "openssl", Version: "1.0.1"},
	{Name: "libevent", Version: "2.0.21", Depends: []string{"libc"}},
	{Name: "svc", Version: "1.0", Depends: []string{"libc", "openssl", "libevent"}},
}

// Node is one simulated server: its hardware inventory, its package
// universe, and a view of the shared network. It implements agent.Acquirer,
// so a node can serve a real `agent.NewSource` data-source endpoint.
type Node struct {
	Server string

	mu      sync.Mutex
	machine hwinv.Machine
	pkgs    *swpkg.Universe
	flows   int // Internet flows the miner last observed
	fleet   *Fleet
}

// Fleet is the set of simulated agents over one datacenter topology.
type Fleet struct {
	Topo  *topology.Topology
	cfg   Config
	nodes []*Node
	bydns map[string]*Node
	gen   *netflow.Generator
	miner *netflow.Miner
}

// New builds a fleet over topology.FatTree(cfg.K).
func New(cfg Config) (*Fleet, error) {
	cfg.defaults()
	topo, err := topology.FatTree(cfg.K)
	if err != nil {
		return nil, err
	}
	f := &Fleet{
		Topo:  topo,
		cfg:   cfg,
		bydns: make(map[string]*Node),
		gen:   &netflow.Generator{Topo: topo},
		miner: &netflow.Miner{MinFlows: cfg.MinFlows},
	}
	for i, server := range topo.Servers() {
		n := &Node{
			Server:  server,
			machine: hwinv.Generate(server, cfg.Seed+int64(i)*7919),
			pkgs:    swpkg.NewUniverse(),
			flows:   cfg.FlowsPerServer,
			fleet:   f,
		}
		for _, p := range servicePackages {
			if err := n.pkgs.Add(p); err != nil {
				return nil, fmt.Errorf("agentsim: seeding %s: %w", server, err)
			}
		}
		f.nodes = append(f.nodes, n)
		f.bydns[server] = n
	}
	return f, nil
}

// Size returns the number of simulated servers.
func (f *Fleet) Size() int { return len(f.nodes) }

// Servers lists the fleet's server names in topology order.
func (f *Fleet) Servers() []string {
	out := make([]string, len(f.nodes))
	for i, n := range f.nodes {
		out[i] = n.Server
	}
	return out
}

// Node returns the node simulating server, or nil.
func (f *Fleet) Node(server string) *Node { return f.bydns[server] }

// Collect implements agent.Acquirer: the node runs all three acquisition
// modules and returns its current Table 1 records. A non-empty subjects list
// that does not include this node's server yields no records.
func (n *Node) Collect(subjects []string) ([]deps.Record, error) {
	if len(subjects) > 0 {
		found := false
		for _, s := range subjects {
			if s == n.Server {
				found = true
				break
			}
		}
		if !found {
			return nil, nil
		}
	}
	return n.Records()
}

// Records runs the node's acquisition modules: hardware inventory walk,
// package closure resolution for the service program, and flow mining.
func (n *Node) Records() ([]deps.Record, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.recordsLocked()
}

func (n *Node) recordsLocked() ([]deps.Record, error) {
	out := hwinv.Collect(n.machine, true)
	sw, err := n.pkgs.Record("svc", n.Server, "svc")
	if err != nil {
		return nil, fmt.Errorf("agentsim: %s software: %w", n.Server, err)
	}
	out = append(out, sw)
	net, err := n.netRecordsLocked()
	if err != nil {
		return nil, err
	}
	return append(out, net...), nil
}

func (n *Node) netRecordsLocked() ([]deps.Record, error) {
	flows, err := n.fleet.gen.InternetFlows(n.Server, n.flows)
	if err != nil {
		return nil, fmt.Errorf("agentsim: %s flows: %w", n.Server, err)
	}
	return n.fleet.miner.Mine(flows), nil
}

// nicModels are the catalog NICs a flap alternates between.
var nicModels = hwinv.Catalog["NIC"]

// FlapNIC swaps the node's NIC to the next catalog model — the classic
// small hardware change — and returns the new observation record.
func (n *Node) FlapNIC() deps.Record {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, c := range n.machine.Components {
		if c.Type != "NIC" {
			continue
		}
		for j, m := range nicModels {
			if m == c.Model {
				c.Model = nicModels[(j+1)%len(nicModels)]
				break
			}
		}
		n.machine.Components[i] = c
		return deps.NewHardware(n.Server, "NIC", n.Server+"-"+c.Model)
	}
	// A machine without a NIC cannot flap one; generated machines always
	// have one, so this is unreachable in practice.
	return deps.NewHardware(n.Server, "NIC", n.Server+"-missing")
}

// Upgrade bumps one of the node's packages to version and returns the
// service's refreshed software record (its dependency closure changed).
func (n *Node) Upgrade(pkg, version string) (deps.Record, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.pkgs.Upgrade(pkg, version, nil); err != nil {
		return deps.Record{}, err
	}
	return n.pkgs.Record("svc", n.Server, "svc")
}

// Reobserve re-runs the node's flow miner with a different observation
// count, as a fresh capture window would, and returns the mined records.
func (n *Node) Reobserve(flows int) ([]deps.Record, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if flows > 0 {
		n.flows = flows
	}
	return n.netRecordsLocked()
}

// Bootstrap collects every node's full record set, one batch per node — the
// fleet's initial mass acquisition (§2 Step 2 at datacenter scale).
func (f *Fleet) Bootstrap() ([][]deps.Record, error) {
	out := make([][]deps.Record, 0, len(f.nodes))
	for _, n := range f.nodes {
		recs, err := n.Records()
		if err != nil {
			return nil, err
		}
		out = append(out, recs)
	}
	return out, nil
}

// Sources starts a real agent.NewSource TCP endpoint per listed server (all
// when servers is empty), proving the nodes speak the Fig. 5a protocol.
// Callers own the returned sources and must Close them.
func (f *Fleet) Sources(servers ...string) ([]*agent.Source, error) {
	nodes := f.nodes
	if len(servers) > 0 {
		nodes = nodes[:0:0]
		for _, s := range servers {
			n := f.bydns[s]
			if n == nil {
				return nil, fmt.Errorf("agentsim: unknown server %q", s)
			}
			nodes = append(nodes, n)
		}
	}
	out := make([]*agent.Source, 0, len(nodes))
	for _, n := range nodes {
		src, err := agent.NewSource("127.0.0.1:0", n)
		if err != nil {
			for _, s := range out {
				s.Close()
			}
			return nil, err
		}
		out = append(out, src)
	}
	return out, nil
}

// pickNode draws a random node, skipping excluded servers.
func (f *Fleet) pickNode(rng *rand.Rand, exclude map[string]bool) *Node {
	for {
		n := f.nodes[rng.Intn(len(f.nodes))]
		if !exclude[n.Server] {
			return n
		}
	}
}

var _ agent.Acquirer = (*Node)(nil)
