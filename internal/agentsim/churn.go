package agentsim

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"indaas/internal/deps"
)

// Batch is one churn observation push: the records a single agent event
// produced, tagged with its cause.
type Batch struct {
	Server  string
	Event   string // "nic-flap", "sw-upgrade" or "netflow"
	Records []deps.Record
}

// Churn replays the fleet's continuous small changes: mostly NIC flaps and
// rolling software upgrades, with occasional flow re-observations. The
// sequence is deterministic in the seed.
type Churn struct {
	f       *Fleet
	rng     *rand.Rand
	exclude map[string]bool
	upgrade struct {
		cursor int // next node in the rolling wave
		ver    int // monotonically bumped patch level
	}
}

// ChurnStream starts a churn sequence. Servers in exclude are never touched
// — reserve the servers a latency probe watches so its triggers stay
// attributable. It is an error to exclude the whole fleet.
func (f *Fleet) ChurnStream(seed int64, exclude ...string) (*Churn, error) {
	ex := make(map[string]bool, len(exclude))
	for _, s := range exclude {
		if f.bydns[s] == nil {
			return nil, fmt.Errorf("agentsim: cannot exclude unknown server %q", s)
		}
		ex[s] = true
	}
	if len(ex) >= len(f.nodes) {
		return nil, fmt.Errorf("agentsim: churn excludes all %d servers", len(f.nodes))
	}
	return &Churn{f: f, rng: rand.New(rand.NewSource(seed)), exclude: ex}, nil
}

// Next produces the next churn batch. NIC flaps dominate (single-record
// batches), rolling upgrades sweep the fleet node by node, and flow
// re-observations contribute the occasional wide batch.
func (c *Churn) Next() (Batch, error) {
	switch p := c.rng.Intn(10); {
	case p < 5: // 50%: a NIC flap on a random node
		n := c.f.pickNode(c.rng, c.exclude)
		return Batch{Server: n.Server, Event: "nic-flap", Records: []deps.Record{n.FlapNIC()}}, nil
	case p < 9: // 40%: the rolling upgrade wave reaches the next node
		n, ver := c.nextUpgrade()
		rec, err := n.Upgrade("openssl", ver)
		if err != nil {
			return Batch{}, err
		}
		return Batch{Server: n.Server, Event: "sw-upgrade", Records: []deps.Record{rec}}, nil
	default: // 10%: a node re-observes its flows in a new capture window
		n := c.f.pickNode(c.rng, c.exclude)
		recs, err := n.Reobserve(c.f.cfg.FlowsPerServer + c.rng.Intn(17) - 8)
		if err != nil {
			return Batch{}, err
		}
		return Batch{Server: n.Server, Event: "netflow", Records: recs}, nil
	}
}

// nextUpgrade advances the rolling wave: nodes upgrade in topology order,
// and when the wave wraps the fleet the patch level bumps.
func (c *Churn) nextUpgrade() (*Node, string) {
	for {
		if c.upgrade.cursor == 0 {
			c.upgrade.ver++
		}
		n := c.f.nodes[c.upgrade.cursor]
		c.upgrade.cursor = (c.upgrade.cursor + 1) % len(c.f.nodes)
		if !c.exclude[n.Server] {
			return n, fmt.Sprintf("1.0.%d", c.upgrade.ver)
		}
	}
}

// Pusher accepts observation batches — in production auditd.Client.Ingest
// behind Retry, in tests anything that counts.
type Pusher interface {
	Push(ctx context.Context, records []deps.Record) error
}

// PusherFunc adapts a function to the Pusher interface.
type PusherFunc func(ctx context.Context, records []deps.Record) error

// Push implements Pusher.
func (f PusherFunc) Push(ctx context.Context, records []deps.Record) error { return f(ctx, records) }

// RunConfig paces a churn run.
type RunConfig struct {
	// Rate is the target admitted records/second (required).
	Rate float64
	// Duration bounds the run (required).
	Duration time.Duration
	// Concurrency is the number of in-flight pushes (default 32): enough
	// parallelism that the daemon's group commit can amortize fsyncs.
	Concurrency int
	// BatchRecords coalesces consecutive churn events into pushes of at
	// least this many records — an agent shipping its observation window in
	// one request rather than one request per event. 0 = one event per
	// push.
	BatchRecords int
	// Seed drives the churn sequence (default the fleet seed).
	Seed int64
	// Exclude lists servers churn must not touch.
	Exclude []string
}

// RunStats summarizes a churn run.
type RunStats struct {
	Batches int64         // pushes attempted
	Records int64         // records successfully admitted
	Errors  int64         // pushes that failed after retries
	Elapsed time.Duration // wall clock of the run
	// Push latency distribution over successful pushes (client-observed:
	// includes any 429 self-pacing the Pusher performs).
	PushP50, PushP99 time.Duration
}

// RecordsPerSec is the achieved admission rate.
func (s RunStats) RecordsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Records) / s.Elapsed.Seconds()
}

// Run replays churn against p at the target rate: a feeder thread draws
// batches from the churn stream and releases them on a records/second
// schedule; Concurrency workers push them. Returns when Duration elapses,
// ctx is done, or churn generation fails.
func (f *Fleet) Run(ctx context.Context, p Pusher, rc RunConfig) (RunStats, error) {
	if rc.Rate <= 0 || rc.Duration <= 0 {
		return RunStats{}, fmt.Errorf("agentsim: run needs positive Rate and Duration")
	}
	if rc.Concurrency <= 0 {
		rc.Concurrency = 32
	}
	seed := rc.Seed
	if seed == 0 {
		seed = f.cfg.Seed
	}
	churn, err := f.ChurnStream(seed, rc.Exclude...)
	if err != nil {
		return RunStats{}, err
	}

	ctx, cancel := context.WithTimeout(ctx, rc.Duration)
	defer cancel()
	start := time.Now()

	var (
		stats   RunStats
		mu      sync.Mutex
		lats    []time.Duration
		pending = make(chan Batch, rc.Concurrency)
		wg      sync.WaitGroup
		genErr  error
	)
	for i := 0; i < rc.Concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range pending {
				t0 := time.Now()
				err := p.Push(ctx, b.Records)
				if err != nil {
					if ctx.Err() != nil {
						return // the run ended mid-push; not a pusher failure
					}
					atomic.AddInt64(&stats.Errors, 1)
					continue
				}
				atomic.AddInt64(&stats.Records, int64(len(b.Records)))
				mu.Lock()
				lats = append(lats, time.Since(t0))
				mu.Unlock()
			}
		}()
	}

	// The feeder schedules each batch by the cumulative record count: batch
	// n may go once n/Rate seconds have passed, which holds the admitted
	// record rate at Rate regardless of batch sizes.
	var sent int64
feed:
	for {
		b, err := churn.Next()
		if err != nil {
			genErr = err
			break
		}
		for len(b.Records) < rc.BatchRecords {
			nb, err := churn.Next()
			if err != nil {
				genErr = err
				break feed
			}
			b.Records = append(b.Records, nb.Records...)
		}
		due := start.Add(time.Duration(float64(sent) / rc.Rate * float64(time.Second)))
		if d := time.Until(due); d > 0 {
			select {
			case <-ctx.Done():
				break feed
			case <-time.After(d):
			}
		}
		select {
		case <-ctx.Done():
			break feed
		case pending <- b:
			sent += int64(len(b.Records))
			atomic.AddInt64(&stats.Batches, 1)
		}
	}
	close(pending)
	wg.Wait()
	stats.Elapsed = time.Since(start)
	stats.PushP50, stats.PushP99 = Percentiles(lats)
	return stats, genErr
}

// Percentiles returns the p50 and p99 of the sample (zero when empty).
func Percentiles(lats []time.Duration) (p50, p99 time.Duration) {
	if len(lats) == 0 {
		return 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := func(p float64) time.Duration {
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	return idx(0.50), idx(0.99)
}
