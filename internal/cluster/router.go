package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"indaas/internal/auditd"
	"indaas/internal/report"
)

// router is the remote Executor: it wraps the node's local worker pool and
// routes each forwardable workload to the hash owner of its content
// address over the ordinary client protocol, marked with ForwardedHeader so
// the owner computes it locally (single-hop ownership — a forward is never
// forwarded again). Many-deployment audits are instead fanned out: one
// single-deployment sub-audit per deployment, each routed to its own owner,
// spliced back into one ranked report at the coordinator.
//
// Every remote path degrades to the wrapped pool: an unreachable or
// diverged owner, a failed forward, a broken fan-out — the workload runs
// locally and the client never learns the cluster had a bad day.
type router struct {
	n     *Node
	inner auditd.Executor
	wg    sync.WaitGroup
}

// Submit routes the workload. It is called with server locks held, so every
// decision that could touch the network happens on a spawned goroutine; the
// synchronous path only inspects in-memory state.
func (r *router) Submit(ctx context.Context, w *auditd.Workload, cb auditd.ExecCallbacks) error {
	if w.NoForward || !wireMatchesKind(w) {
		return r.inner.Submit(ctx, w, cb)
	}
	if sr, ok := w.Wire.(*auditd.SubmitRequest); ok && len(sr.Deployments) >= 2 && r.n.healthyPeers() > 0 {
		r.wg.Add(1)
		go r.fanout(ctx, w, sr, cb)
		return nil
	}
	owner := r.n.ring.owner(w.Key, r.n.peerAlive)
	if owner == "" || owner == r.n.cfg.Self {
		return r.inner.Submit(ctx, w, cb)
	}
	r.wg.Add(1)
	go r.forward(ctx, owner, w, cb)
	return nil
}

// Execute runs the workload synchronously on the local pool's panic
// barrier; remote execution never applies to the synchronous escape hatch.
func (r *router) Execute(ctx context.Context, w *auditd.Workload) (any, error) {
	return r.inner.Execute(ctx, w)
}

func (r *router) QueueDepth() int { return r.inner.QueueDepth() }

func (r *router) Close() { r.inner.Close() }

// Wait drains in-flight forwards and fan-outs before waiting out the pool:
// a forwarded job's Done callback still needs the server alive.
func (r *router) Wait() {
	r.wg.Wait()
	r.inner.Wait()
}

// wireMatchesKind guards the type assertions the forwarding paths make.
func wireMatchesKind(w *auditd.Workload) bool {
	switch w.Kind {
	case auditd.KindAudit:
		_, ok := w.Wire.(*auditd.SubmitRequest)
		return ok
	case auditd.KindRecommend:
		_, ok := w.Wire.(*auditd.RecommendRequest)
		return ok
	case auditd.KindPrivateAudit:
		_, ok := w.Wire.(*auditd.PrivateAuditRequest)
		return ok
	}
	return false
}

// eligible decides whether owner may compute w: always for self-contained
// workloads, otherwise only when the owner serves the exact database
// snapshot the workload's key was derived from. A cached mismatch earns one
// synchronous re-probe — replication may have converged the peer after the
// last poll — before giving up and computing locally.
func (r *router) eligible(ctx context.Context, owner string, w *auditd.Workload) bool {
	if w.SelfContained {
		return true
	}
	if r.n.peerFingerprint(owner) == w.DBFingerprint {
		return true
	}
	alive, fp := r.n.refresh(ctx, owner)
	return alive && fp == w.DBFingerprint
}

// runLocal computes w on the local pool after routing declined or failed,
// honoring the callback contract on the server's behalf. The queue is tried
// first (metrics and backpressure as if the job had never been routable);
// if it is saturated the workload runs right here — this goroutine is
// already off the server's locks, and a job the server accepted must not
// fail with a queue error it never would have seen single-node.
func (r *router) runLocal(ctx context.Context, w *auditd.Workload, cb auditd.ExecCallbacks) {
	if r.inner.Submit(ctx, w, cb) == nil {
		return
	}
	if err := ctx.Err(); err != nil {
		cb.Done(nil, err)
		return
	}
	if cb.Started != nil {
		cb.Started()
	}
	res, err := r.inner.Execute(ctx, w)
	cb.Done(res, err)
}

// cancelRemote best-effort cancels a job this node forwarded; the caller's
// context is already dead, so the cancel gets its own short one.
func (r *router) cancelRemote(owner, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	r.n.fwd[owner].Cancel(ctx, id)
}

// forward ships one workload to its owner and relays the outcome. Transport
// failures — the owner unreachable before or during the job — mark the peer
// dead and fall back to local compute; a job that *ran* remotely and failed
// is a real failure (it would fail identically here) and is relayed, not
// retried.
func (r *router) forward(ctx context.Context, owner string, w *auditd.Workload, cb auditd.ExecCallbacks) {
	defer r.wg.Done()
	if !r.eligible(ctx, owner, w) {
		r.runLocal(ctx, w, cb)
		return
	}
	c := r.n.fwd[owner]
	st, err := submitByKind(ctx, c, w)
	if err != nil {
		r.n.m.forwardFailures.Add(1)
		r.n.markDead(owner)
		r.runLocal(ctx, w, cb)
		return
	}
	r.n.m.forwards.Add(1)
	if cb.Started != nil {
		cb.Started()
	}
	done, err := c.WaitDone(ctx, st.ID)
	if err != nil {
		if ctx.Err() != nil {
			r.cancelRemote(owner, st.ID)
			cb.Done(nil, ctx.Err())
			return
		}
		// The owner died mid-job. Its journal will replay the job when it
		// comes back, but this client is waiting now: compute here.
		r.n.m.forwardFailures.Add(1)
		r.n.markDead(owner)
		res, lerr := r.inner.Execute(ctx, w)
		cb.Done(res, lerr)
		return
	}
	switch done.State {
	case auditd.StateDone:
		res, err := fetchResultByKind(ctx, c, w.Kind, st.ID)
		if err != nil {
			// Completed remotely but the result fetch broke: recompute — the
			// content-addressed result is identical.
			r.n.m.forwardFailures.Add(1)
			res, lerr := r.inner.Execute(ctx, w)
			cb.Done(res, lerr)
			return
		}
		cb.Done(res, nil)
	case auditd.StateCanceled:
		cb.Done(nil, fmt.Errorf("job canceled on owner %s", owner))
	default:
		cb.Done(nil, errors.New(done.Error))
	}
}

// submitByKind re-submits the workload's wire request to the owner's
// matching endpoint; wireMatchesKind vetted the assertions.
func submitByKind(ctx context.Context, c *auditd.Client, w *auditd.Workload) (auditd.JobStatus, error) {
	switch w.Kind {
	case auditd.KindRecommend:
		return c.Recommend(ctx, w.Wire.(*auditd.RecommendRequest))
	case auditd.KindPrivateAudit:
		return c.PrivateAudit(ctx, w.Wire.(*auditd.PrivateAuditRequest))
	default:
		return c.Submit(ctx, w.Wire.(*auditd.SubmitRequest))
	}
}

// fetchResultByKind fetches the finished job's result as the concrete type
// the server caches for that workload kind.
func fetchResultByKind(ctx context.Context, c *auditd.Client, kind, id string) (any, error) {
	switch kind {
	case auditd.KindRecommend:
		res, err := c.RecommendResult(ctx, id)
		if err != nil {
			return nil, err
		}
		return res, nil
	case auditd.KindPrivateAudit:
		res, err := c.PrivateAuditResult(ctx, id)
		if err != nil {
			return nil, err
		}
		return res, nil
	default:
		res, err := c.Report(ctx, id)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
}

// fanout splits a many-deployment audit into one sub-audit per deployment,
// routes each — over HTTP, self included, all marked forwarded — to the
// hash owner of its own content address, and splices the sub-reports back
// into one report ranked exactly as a single-node run would have ranked it.
// Any sub-audit failing abandons the fan-out and computes the whole parent
// locally: the spliced answer must never be partial.
func (r *router) fanout(ctx context.Context, w *auditd.Workload, sr *auditd.SubmitRequest, cb auditd.ExecCallbacks) {
	defer r.wg.Done()
	if err := ctx.Err(); err != nil {
		cb.Done(nil, err)
		return
	}
	if cb.Started != nil {
		cb.Started()
	}
	r.n.m.fanouts.Add(1)

	type subResult struct {
		rep *report.Report
		err error
	}
	results := make([]subResult, len(sr.Deployments))
	var wg sync.WaitGroup
	for i := range sr.Deployments {
		sub := *sr
		sub.Deployments = []auditd.DeploymentWire{sr.Deployments[i]}
		wg.Add(1)
		go func(i int, sub auditd.SubmitRequest) {
			defer wg.Done()
			results[i].rep, results[i].err = r.subAudit(ctx, w, &sub)
		}(i, sub)
	}
	wg.Wait()

	spliced := &report.Report{Title: sr.Title}
	for _, sr := range results {
		if sr.err != nil {
			// Abandon the fan-out; compute the full parent on the local pool.
			r.n.m.forwardFailures.Add(1)
			res, err := r.inner.Execute(ctx, w)
			cb.Done(res, err)
			return
		}
		spliced.Audits = append(spliced.Audits, sr.rep.Audits...)
	}
	if sr.FailureProb > 0 {
		spliced.Rank(report.CompareByFailureProb)
	} else {
		spliced.Rank(report.CompareBySizeVector)
	}
	cb.Done(spliced, nil)
}

// subAudit runs one single-deployment sub-request on the owner of its own
// content address. Owners that are dead, diverged, or this node itself all
// resolve to self — the sub still travels the forwarded-HTTP path, so every
// sub-audit is journaled, cached, and counted identically wherever it runs.
func (r *router) subAudit(ctx context.Context, parent *auditd.Workload, sub *auditd.SubmitRequest) (*report.Report, error) {
	key, err := sub.CacheKey(parent.DBFingerprint)
	if err != nil {
		return nil, err
	}
	owner := r.n.ring.owner(key, r.n.peerAlive)
	if owner == "" || owner == r.n.cfg.Self {
		owner = r.n.cfg.Self
	} else if !r.eligible(ctx, owner, parent) {
		owner = r.n.cfg.Self
	}
	r.n.m.fanoutSubaudits.Add(1)
	c := r.n.fwd[owner]
	st, err := c.Submit(ctx, sub)
	if err != nil {
		if owner != r.n.cfg.Self {
			r.n.markDead(owner)
		}
		return nil, err
	}
	done, err := c.WaitDone(ctx, st.ID)
	if err != nil {
		if owner != r.n.cfg.Self && ctx.Err() == nil {
			r.n.markDead(owner)
		}
		return nil, err
	}
	if done.State != auditd.StateDone {
		return nil, fmt.Errorf("sub-audit %s on %s: %s", st.ID, owner, done.State)
	}
	return c.Report(ctx, st.ID)
}
