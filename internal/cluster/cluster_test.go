package cluster_test

// Multi-node integration tests: real auditd servers on real listeners,
// clustered through the executor/tier/replication seams exactly as cmd
// serve wires them. They cover ownership forwarding, peer cache hits,
// fan-out splice equality against a single-node run, ingest replication
// convergence, and survival of a dead peer.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"indaas/internal/auditd"
	"indaas/internal/cluster"
	"indaas/internal/deps"
	"indaas/internal/report"
)

type testNode struct {
	s    *auditd.Server
	node *cluster.Node
	srv  *http.Server
	addr string
	c    *auditd.Client
}

// kill tears the node down abruptly — listener and all — as a crash would.
func (tn *testNode) kill() {
	tn.srv.Close()
	tn.node.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	tn.s.Shutdown(ctx)
}

// startCluster boots size clustered nodes on loopback listeners and waits
// for their health polls to converge.
func startCluster(t *testing.T, size int) []*testNode {
	t.Helper()
	lns := make([]net.Listener, size)
	addrs := make([]string, size)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*testNode, size)
	for i := range nodes {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		node := cluster.New(cluster.Config{Self: addrs[i], Peers: peers, PollInterval: 100 * time.Millisecond})
		s := auditd.New(auditd.Config{
			Workers:       2,
			WrapExecutor:  node.WrapExecutor,
			ExtraTiers:    []auditd.ResultTier{node.PeerTier()},
			ReplicateHook: node.Replicate,
			ExtraMetrics:  node.RenderMetrics,
		})
		srv := &http.Server{Handler: s.Handler()}
		go srv.Serve(lns[i])
		node.Start()
		nodes[i] = &testNode{s: s, node: node, srv: srv, addr: addrs[i], c: auditd.NewClient(addrs[i], nil)}
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			tn.kill()
		}
	})
	ctx := context.Background()
	for _, tn := range nodes {
		waitMetric(t, ctx, tn, "auditd_cluster_peers_healthy", float64(size-1))
	}
	return nodes
}

// metricValue extracts one sample from an exposition page.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`).FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found", name)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s = %q: %v", name, m[1], err)
	}
	return v
}

func waitMetric(t *testing.T, ctx context.Context, tn *testNode, name string, want float64) {
	t.Helper()
	for i := 0; i < 100; i++ {
		text, err := tn.c.Metrics(ctx)
		if err == nil && metricValue(t, text, name) == want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("node %s: metric %s never reached %v", tn.addr, name, want)
}

func clusterRecords() []auditd.RecordWire {
	return auditd.WireRecords([]deps.Record{
		deps.NewNetwork("s1", "Internet", "ToR1", "Core1"),
		deps.NewNetwork("s2", "Internet", "ToR2", "Core1"),
		deps.NewNetwork("s3", "Internet", "ToR2", "Core2"),
		deps.NewHardware("s1", "Disk", "S1-SED900"),
		deps.NewHardware("s2", "Disk", "S2-SED900"),
		deps.NewHardware("s3", "Disk", "S3-SED900"),
		deps.NewSoftware("nginx", "s1", "libc6"),
		deps.NewSoftware("httpd", "s2", "libc6"),
		deps.NewSoftware("caddy", "s3", "libssl3"),
	})
}

// inlineAudit is a self-contained single-deployment audit whose cache key —
// and therefore hash owner — varies with the salt.
func inlineAudit(salt int) *auditd.SubmitRequest {
	return &auditd.SubmitRequest{
		Title:       fmt.Sprintf("cluster-%d", salt),
		Records:     clusterRecords(),
		Seed:        int64(salt + 1),
		Algorithm:   "failure-sampling",
		Rounds:      100 + salt,
		Deployments: []auditd.DeploymentWire{{Name: "s1+s2", Servers: []string{"s1", "s2"}}},
	}
}

// TestClusterForwardsToOwner: audits submitted through one node land on
// exactly one node's worker pool each — the content address's hash owner —
// and the fleet's computation counts sum to the number of distinct audits,
// with forwards showing up in the coordinator's cluster metrics.
func TestClusterForwardsToOwner(t *testing.T) {
	nodes := startCluster(t, 3)
	ctx := context.Background()
	const jobs = 8
	for i := 0; i < jobs; i++ {
		st, err := nodes[0].c.Submit(ctx, inlineAudit(i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if done, err := nodes[0].c.WaitDone(ctx, st.ID); err != nil || done.State != auditd.StateDone {
			t.Fatalf("job %d = %+v, %v", i, done, err)
		}
	}
	var total int64
	spread := 0
	for _, tn := range nodes {
		if c := tn.s.Stats().Computations; c > 0 {
			total += c
			spread++
		}
	}
	if total != jobs {
		t.Fatalf("fleet computed %d jobs, want exactly %d (no double compute, no loss)", total, jobs)
	}
	if spread < 2 {
		t.Fatalf("all %d jobs computed on one node; hash routing spread none", jobs)
	}
	text, err := nodes[0].c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fwd := metricValue(t, text, "auditd_cluster_forwards_total")
	if away := float64(jobs - nodes[0].s.Stats().Computations); fwd != away {
		t.Fatalf("coordinator counted %v forwards, want %v (jobs minus its own computations)", fwd, away)
	}
}

// TestClusterPeerCacheHit: a result computed anywhere in the fleet is a
// cache hit from every node — resubmitting through a node that neither
// computed nor cached it answers instantly via the owner probe (or the
// forwarded submit landing on the owner's cache), never by recomputing.
func TestClusterPeerCacheHit(t *testing.T) {
	nodes := startCluster(t, 3)
	ctx := context.Background()
	req := inlineAudit(42)
	st, err := nodes[0].c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if done, err := nodes[0].c.WaitDone(ctx, st.ID); err != nil || done.State != auditd.StateDone {
		t.Fatalf("first run = %+v, %v", done, err)
	}
	var before int64
	for _, tn := range nodes {
		before += tn.s.Stats().Computations
	}
	for _, tn := range nodes {
		st2, err := tn.c.Submit(ctx, req)
		if err != nil {
			t.Fatalf("resubmit via %s: %v", tn.addr, err)
		}
		if done, err := tn.c.WaitDone(ctx, st2.ID); err != nil || done.State != auditd.StateDone {
			t.Fatalf("resubmit via %s = %+v, %v", tn.addr, done, err)
		}
		if st2.CacheKey != st.CacheKey {
			t.Fatalf("cache key diverged: %s vs %s", st2.CacheKey, st.CacheKey)
		}
	}
	var after int64
	for _, tn := range nodes {
		after += tn.s.Stats().Computations
	}
	if after != before {
		t.Fatalf("resubmits recomputed: fleet computations %d -> %d", before, after)
	}
}

// TestClusterFanoutMatchesSingleNode: a many-deployment audit fanned out
// across the fleet splices to exactly the report a lone node computes —
// same deployments, same order, same risk groups.
func TestClusterFanoutMatchesSingleNode(t *testing.T) {
	req := &auditd.SubmitRequest{
		Title:   "fanout-vs-single",
		Records: clusterRecords(),
		Deployments: []auditd.DeploymentWire{
			{Name: "s1+s2", Servers: []string{"s1", "s2"}},
			{Name: "s1+s3", Servers: []string{"s1", "s3"}},
			{Name: "s2+s3", Servers: []string{"s2", "s3"}},
		},
	}
	ctx := context.Background()

	single := auditd.New(auditd.Config{Workers: 2})
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		single.Shutdown(sctx)
	}()
	st, err := single.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if done, err := single.WaitDone(ctx, st.ID, 10*time.Second); err != nil || done.State != auditd.StateDone {
		t.Fatalf("single-node run = %+v, %v", done, err)
	}
	wantRes, err := single.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := wantRes.(*report.Report)

	nodes := startCluster(t, 3)
	cst, err := nodes[0].c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if done, err := nodes[0].c.WaitDone(ctx, cst.ID); err != nil || done.State != auditd.StateDone {
		t.Fatalf("clustered run = %+v, %v", done, err)
	}
	got, err := nodes[0].c.Report(ctx, cst.ID)
	if err != nil {
		t.Fatal(err)
	}

	text, err := nodes[0].c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if metricValue(t, text, "auditd_cluster_fanouts_total") != 1 {
		t.Fatal("the clustered run did not fan out")
	}
	if subs := metricValue(t, text, "auditd_cluster_fanout_subaudits_total"); subs != 3 {
		t.Fatalf("fan-out spawned %v sub-audits, want 3", subs)
	}
	if !reflect.DeepEqual(normalizeReport(t, want), normalizeReport(t, got)) {
		t.Fatalf("spliced report diverges from single-node run:\nwant %s\ngot  %s",
			normalizeReport(t, want), normalizeReport(t, got))
	}
}

// normalizeReport strips per-run timing from a report and renders it
// canonically for comparison.
func normalizeReport(t *testing.T, r *report.Report) string {
	t.Helper()
	c := *r
	c.Audits = append([]report.DeploymentAudit(nil), r.Audits...)
	for i := range c.Audits {
		c.Audits[i].Elapsed = 0
	}
	blob, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// TestClusterReplicationConverges: records ingested through one node reach
// every peer before the ingest is acknowledged, so the fleet serves one
// database fingerprint and a database audit submitted anywhere completes.
func TestClusterReplicationConverges(t *testing.T) {
	nodes := startCluster(t, 3)
	ctx := context.Background()
	resp, err := nodes[0].c.Ingest(ctx, clusterRecords())
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range nodes {
		st := tn.s.Stats()
		if st.IngestedRecords != int64(resp.Added) {
			t.Fatalf("node %s holds %d records, want %d", tn.addr, st.IngestedRecords, resp.Added)
		}
	}
	// A non-self-contained audit (no inline records) against the replicated
	// database, submitted through a non-ingesting node: the key embeds the
	// shared fingerprint, so any node may compute it.
	req := &auditd.SubmitRequest{
		Title:       "replicated-db",
		Deployments: []auditd.DeploymentWire{{Name: "s1+s2", Servers: []string{"s1", "s2"}}},
	}
	st, err := nodes[1].c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if done, err := nodes[1].c.WaitDone(ctx, st.ID); err != nil || done.State != auditd.StateDone {
		t.Fatalf("replicated-db audit = %+v, %v", done, err)
	}
}

// TestClusterSurvivesDeadPeer: killing one node mid-fleet leaves the
// survivors serving everything — forwards to the corpse fail over to local
// compute and the peer-health gauge drops.
func TestClusterSurvivesDeadPeer(t *testing.T) {
	nodes := startCluster(t, 3)
	ctx := context.Background()
	nodes[2].kill()

	for i := 0; i < 8; i++ {
		st, err := nodes[0].c.Submit(ctx, inlineAudit(100+i))
		if err != nil {
			t.Fatalf("submit %d after kill: %v", i, err)
		}
		if done, err := nodes[0].c.WaitDone(ctx, st.ID); err != nil || done.State != auditd.StateDone {
			t.Fatalf("job %d after kill = %+v, %v", i, done, err)
		}
	}
	waitMetric(t, ctx, nodes[0], "auditd_cluster_peers_healthy", 1)
	total := nodes[0].s.Stats().Computations + nodes[1].s.Stats().Computations
	if total != 8 {
		t.Fatalf("survivors computed %d jobs, want all 8", total)
	}
}

// TestClusterMetricNames: every cluster series on the exposition page obeys
// the repo's naming conventions (counters end in _total; the two gauges are
// allowlisted in scripts/check_metric_names.sh).
func TestClusterMetricNames(t *testing.T) {
	nodes := startCluster(t, 2)
	text, err := nodes[0].c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	gauges := map[string]bool{"auditd_cluster_peers": true, "auditd_cluster_peers_healthy": true}
	for _, name := range regexp.MustCompile(`auditd_cluster_[a-z0-9_]+`).FindAllString(text, -1) {
		if !strings.HasSuffix(name, "_total") && !gauges[name] {
			t.Errorf("cluster metric %s is neither a _total counter nor an allowlisted gauge", name)
		}
	}
	if !strings.Contains(text, "auditd_cluster_forwards_total") {
		t.Fatal("cluster series missing from /metrics")
	}
}
