package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// healthTimeout bounds one /healthz probe. Health checks race real traffic
// on the same loopback or LAN hop, so a slow answer is itself a signal.
const healthTimeout = 2 * time.Second

// peerState is what this node believes about one peer, refreshed by the
// poller and corrected inline by traffic (a refused forward marks the peer
// dead immediately; a successful one marks it alive).
type peerState struct {
	mu          sync.Mutex
	alive       bool
	fingerprint string // the peer's served database fingerprint
	records     int
}

// healthView is the subset of auditd's /healthz body routing needs: is the
// peer up, and which database generation is it serving.
type healthView struct {
	OK            bool   `json:"ok"`
	Status        string `json:"status"`
	DBRecords     int    `json:"db_records"`
	DBFingerprint string `json:"db_fingerprint"`
}

// probe fetches addr's /healthz once. Any transport or decode failure reads
// as dead.
func (n *Node) probe(ctx context.Context, addr string) (healthView, bool) {
	var hv healthView
	ctx, cancel := context.WithTimeout(ctx, healthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/healthz", nil)
	if err != nil {
		return hv, false
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return hv, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return hv, false
	}
	if json.NewDecoder(resp.Body).Decode(&hv) != nil {
		return hv, false
	}
	return hv, hv.OK
}

// refresh probes one peer and folds the result into its state, returning
// the updated liveness and fingerprint. The router calls it synchronously
// when a peer's cached fingerprint disagrees with a workload's — replication
// may have converged the peer a moment ago, and one probe is cheaper than
// computing a forwardable workload locally.
func (n *Node) refresh(ctx context.Context, addr string) (alive bool, fingerprint string) {
	st := n.peers[addr]
	if st == nil {
		return false, ""
	}
	hv, ok := n.probe(ctx, addr)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.alive = ok
	if ok {
		st.fingerprint = hv.DBFingerprint
		st.records = hv.DBRecords
	}
	return st.alive, st.fingerprint
}

// peerAlive reports the poller's current belief about addr; the node's own
// address is always alive.
func (n *Node) peerAlive(addr string) bool {
	if addr == n.cfg.Self {
		return true
	}
	st := n.peers[addr]
	if st == nil {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.alive
}

// peerFingerprint returns the last fingerprint addr's /healthz reported.
func (n *Node) peerFingerprint(addr string) string {
	st := n.peers[addr]
	if st == nil {
		return ""
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.fingerprint
}

// markDead records an observed failure against addr without waiting for the
// next poll — the router calls it the moment a forward is refused, so the
// very next workload routes around the corpse.
func (n *Node) markDead(addr string) {
	if st := n.peers[addr]; st != nil {
		st.mu.Lock()
		st.alive = false
		st.mu.Unlock()
	}
}

// healthyPeers counts peers currently believed alive.
func (n *Node) healthyPeers() int {
	alive := 0
	for _, addr := range n.cfg.Peers {
		if n.peerAlive(addr) {
			alive++
		}
	}
	return alive
}

// poll runs the membership loop: probe every peer, sleep, repeat, until
// Stop cancels the context. The first sweep runs immediately so a freshly
// started node routes sensibly without waiting out an interval.
func (n *Node) poll(ctx context.Context) {
	defer n.wg.Done()
	for {
		for _, addr := range n.cfg.Peers {
			n.refresh(ctx, addr)
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(n.cfg.PollInterval):
		}
	}
}
