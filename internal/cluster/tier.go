package cluster

import (
	"context"
)

// peerTier is the cluster's ResultTier: after the local memory and disk
// tiers miss, it probes the cache of the node that owns the key — the one
// node in the fleet most likely to hold the result, since forwards
// concentrate each key's computations there. The probe hits the peer's
// /v1/cache endpoint, which answers from its memory tier only, so two nodes
// can never chase each other's caches in a loop.
//
// The tier is read-only: results are Put into a peer's cache by the peer
// computing them, never pushed from outside, so Put and Remove are no-ops.
type peerTier struct {
	n *Node
}

func (t *peerTier) Name() string { return "peer" }

func (t *peerTier) Get(key string) (any, bool) {
	owner := t.n.ring.owner(key, t.n.peerAlive)
	if owner == "" || owner == t.n.cfg.Self {
		return nil, false
	}
	c := t.n.cacheC[owner]
	if c == nil {
		return nil, false
	}
	// One bounded round trip, no retries: a probe is an optimization, and a
	// miss (or a dead peer) must cost at most one RTT before computing.
	ctx, cancel := context.WithTimeout(context.Background(), healthTimeout)
	defer cancel()
	res, err := c.CachedAny(ctx, key)
	if err != nil {
		return nil, false
	}
	t.n.m.peerCacheHits.Add(1)
	return res, true
}

func (t *peerTier) Put(key string, res any) []string { return nil }

func (t *peerTier) Remove(key string) {}
