// Package cluster turns a set of independent auditd nodes into one serving
// fleet. It hangs off the seams internal/auditd exposes instead of invading
// it: a remote Executor wrapped around the local worker pool routes each
// workload to the hash owner of its content address, a peer ResultTier
// probes the owner's cache behind the local memory and disk tiers, and a
// replication hook pushes ingested records to every peer so the fleet's
// database fingerprints — and therefore its cache keys — converge.
//
// Membership is static (the -peers flag); liveness is not. Every node polls
// every peer's /healthz for reachability and database identity, routes
// around dead or diverged peers, and falls back to computing locally when a
// forward fails — a cluster node degrades to exactly the single-node daemon,
// never to an error.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// vnodes is how many points each node projects onto the ring. More points
// smooth the distribution (at 256, a 4-node ring stays within a few percent
// of uniform) and shrink the remap set when membership changes to ~1/N of
// the keyspace.
const vnodes = 256

// ring is a consistent-hash ring over the cluster's node addresses. The
// ring itself is immutable after build — liveness is handled at lookup time
// by skipping points whose node the caller says is dead, which preserves
// the ownership of every key whose owner is alive no matter which other
// nodes come and go.
type ring struct {
	points []ringPoint // sorted by hash
	nodes  []string
}

type ringPoint struct {
	hash uint64
	node string
}

// hashPoint maps a label to its ring position: the first 8 bytes of its
// SHA-256, the same family of hash the content addresses themselves use.
func hashPoint(label string) uint64 {
	sum := sha256.Sum256([]byte(label))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing builds the ring over the given node addresses (duplicates
// ignored).
func newRing(nodes []string) *ring {
	r := &ring{}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for i := 0; i < vnodes; i++ {
			var b [8]byte
			binary.BigEndian.PutUint64(b[:], uint64(i))
			r.points = append(r.points, ringPoint{hash: hashPoint(n + "#" + string(b[:])), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node // deterministic on (absurdly unlikely) collisions
	})
	return r
}

// owner returns the node owning key: the first ring point at or after the
// key's hash whose node alive() accepts, wrapping around. With no alive
// node it returns "".
func (r *ring) owner(key string, alive func(node string) bool) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashPoint(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	skipped := make(map[string]bool, len(r.nodes))
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if skipped[p.node] {
			continue
		}
		if alive == nil || alive(p.node) {
			return p.node
		}
		skipped[p.node] = true
		if len(skipped) == len(r.nodes) {
			return ""
		}
	}
	return ""
}
