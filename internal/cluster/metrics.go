package cluster

import (
	"fmt"
	"io"
	"sync/atomic"
)

// metrics counts the cluster layer's own traffic; the node renders them
// onto the daemon's /metrics page through Config.ExtraMetrics, after the
// core auditd series.
type metrics struct {
	// forwards counts workloads routed to a peer that owns their content
	// address; forwardFailures counts forwards that could not reach the
	// owner (the workload then ran locally).
	forwards        atomic.Int64
	forwardFailures atomic.Int64
	// fanouts counts many-deployment audits split across the fleet;
	// fanoutSubaudits counts the single-deployment sub-audits they spawned.
	fanouts         atomic.Int64
	fanoutSubaudits atomic.Int64
	// replicatedRecords counts ingested records pushed to peers (records ×
	// peers); replicationFailures counts peers a push could not reach.
	replicatedRecords   atomic.Int64
	replicationFailures atomic.Int64
	// peerCacheHits counts results served out of a peer's cache through the
	// peer result tier.
	peerCacheHits atomic.Int64
}

// render writes the cluster series in Prometheus exposition format. peers
// and peersHealthy are point-in-time gauges supplied by the health poller.
func (m *metrics) render(w io.Writer, peers, peersHealthy int) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gauge("auditd_cluster_peers", "Configured cluster peers (excluding this node).", peers)
	gauge("auditd_cluster_peers_healthy", "Peers whose last health poll succeeded.", peersHealthy)
	counter("auditd_cluster_forwards_total", "Workloads forwarded to their hash owner.", m.forwards.Load())
	counter("auditd_cluster_forward_failures_total", "Forwards that failed over to local compute.", m.forwardFailures.Load())
	counter("auditd_cluster_fanouts_total", "Many-deployment audits split across the fleet.", m.fanouts.Load())
	counter("auditd_cluster_fanout_subaudits_total", "Single-deployment sub-audits spawned by fan-outs.", m.fanoutSubaudits.Load())
	counter("auditd_cluster_replicated_records_total", "Ingested records pushed to peers (records x peers).", m.replicatedRecords.Load())
	counter("auditd_cluster_replication_failures_total", "Peers an ingest replication could not reach.", m.replicationFailures.Load())
	counter("auditd_cluster_peer_cache_hits_total", "Results served from a peer's cache.", m.peerCacheHits.Load())
}
