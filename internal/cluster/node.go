package cluster

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"indaas/internal/auditd"
)

// Config describes this node's place in a static-membership cluster.
type Config struct {
	// Self is the address peers reach this node at ("http://host:port" —
	// a bare host:port gets the scheme prefixed). It participates in the
	// hash ring like any peer.
	Self string
	// Peers are the other nodes' addresses.
	Peers []string
	// PollInterval is the /healthz membership poll period (default 2s).
	PollInterval time.Duration
}

// forwardRetry keeps cluster-internal calls snappy: a peer that cannot be
// reached within a couple of short attempts is treated as dead and the work
// runs locally — clients get a slower answer, never a stuck one.
var forwardRetry = auditd.RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: 500 * time.Millisecond}

// Node is one auditd process's view of the cluster. It owns the hash ring,
// the peer health state, and the per-peer clients; its WrapExecutor,
// PeerTier, Replicate and RenderMetrics methods plug into the matching
// auditd.Config seams.
type Node struct {
	cfg    Config
	ring   *ring
	peers  map[string]*peerState     // peer address -> believed state
	fwd    map[string]*auditd.Client // per node (self included), forwarded-marked
	rep    map[string]*auditd.Client // per peer, replicated-marked
	cacheC map[string]*auditd.Client // per peer, no retries: cache probes fail fast
	hc     *http.Client
	m      metrics

	mu     sync.Mutex
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// normalizeAddr canonicalizes one node address so ring positions and map
// keys agree regardless of how the operator spelled it.
func normalizeAddr(addr string) string {
	addr = strings.TrimRight(strings.TrimSpace(addr), "/")
	if addr == "" {
		return ""
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return addr
}

// New builds a node over a static peer list. Call Start to begin health
// polling, and wire the node into auditd.Config before auditd.New:
//
//	node := cluster.New(cluster.Config{Self: self, Peers: peers})
//	cfg.WrapExecutor = node.WrapExecutor
//	cfg.ExtraTiers = []auditd.ResultTier{node.PeerTier()}
//	cfg.ReplicateHook = node.Replicate
//	cfg.ExtraMetrics = node.RenderMetrics
func New(cfg Config) *Node {
	cfg.Self = normalizeAddr(cfg.Self)
	peers := make([]string, 0, len(cfg.Peers))
	for _, p := range cfg.Peers {
		p = normalizeAddr(p)
		if p != "" && p != cfg.Self {
			peers = append(peers, p)
		}
	}
	cfg.Peers = peers
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 2 * time.Second
	}
	n := &Node{
		cfg:    cfg,
		ring:   newRing(append([]string{cfg.Self}, peers...)),
		peers:  make(map[string]*peerState, len(peers)),
		fwd:    make(map[string]*auditd.Client, len(peers)+1),
		rep:    make(map[string]*auditd.Client, len(peers)),
		cacheC: make(map[string]*auditd.Client, len(peers)),
		hc:     &http.Client{}, // no global timeout: forwards long-poll job completion
	}
	for _, addr := range append([]string{cfg.Self}, peers...) {
		c := auditd.NewClient(addr, n.hc)
		c.Retry = forwardRetry
		c.SetHeader(auditd.ForwardedHeader, "1")
		n.fwd[addr] = c
	}
	for _, addr := range peers {
		n.peers[addr] = &peerState{}
		c := auditd.NewClient(addr, n.hc)
		c.Retry = forwardRetry
		c.SetHeader(auditd.ReplicatedHeader, "1")
		n.rep[addr] = c
		pc := auditd.NewClient(addr, n.hc)
		pc.Retry = auditd.RetryPolicy{MaxAttempts: 1}
		n.cacheC[addr] = pc
	}
	return n
}

// Start begins the membership poll loop. Idempotent.
func (n *Node) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	n.cancel = cancel
	n.wg.Add(1)
	go n.poll(ctx)
}

// Stop ends the poll loop and waits it out. Idempotent.
func (n *Node) Stop() {
	n.mu.Lock()
	cancel := n.cancel
	n.cancel = nil
	n.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	n.wg.Wait()
}

// WrapExecutor wraps the server's local worker pool with the cluster
// router; plug it into auditd.Config.WrapExecutor.
func (n *Node) WrapExecutor(inner auditd.Executor) auditd.Executor {
	return &router{n: n, inner: inner}
}

// PeerTier returns the result tier that probes the hash owner's cache;
// plug it into auditd.Config.ExtraTiers.
func (n *Node) PeerTier() auditd.ResultTier {
	return &peerTier{n: n}
}

// RenderMetrics appends the cluster series to the daemon's /metrics page;
// plug it into auditd.Config.ExtraMetrics.
func (n *Node) RenderMetrics(w io.Writer) {
	n.m.render(w, len(n.cfg.Peers), n.healthyPeers())
}

// replicateTimeout bounds the push to one peer. Replication runs inside the
// ingest commit path, before the originating client is acknowledged, so a
// peer must not be able to stall ingests indefinitely.
const replicateTimeout = 10 * time.Second

// Replicate pushes locally originated ingest records to every live peer and
// waits for the pushes to settle; plug it into auditd.Config.ReplicateHook.
// By the time it returns, every reachable peer serves the same database
// fingerprint — which is what makes cache keys (and forwarded workloads)
// valid fleet-wide. A peer that cannot be reached is marked dead and
// counted; it rejoins with a stale fingerprint, which routing treats as
// "compute locally instead", so correctness degrades to single-node rather
// than to wrong answers.
func (n *Node) Replicate(records []auditd.RecordWire) {
	if len(records) == 0 || len(n.cfg.Peers) == 0 {
		return
	}
	var wg sync.WaitGroup
	for _, addr := range n.cfg.Peers {
		if !n.peerAlive(addr) {
			n.m.replicationFailures.Add(1)
			continue
		}
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), replicateTimeout)
			defer cancel()
			if _, err := n.rep[addr].Ingest(ctx, records); err != nil {
				n.m.replicationFailures.Add(1)
				n.markDead(addr)
				return
			}
			n.m.replicatedRecords.Add(int64(len(records)))
		}(addr)
	}
	wg.Wait()
}
