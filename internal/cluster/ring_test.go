package cluster

// Hash-ring property tests: the distribution over nodes stays near uniform,
// membership changes remap only ~1/N of the keyspace (the property a naive
// modulo placement lacks — measured differentially against one), and dead
// nodes are skipped without disturbing the ownership of keys whose owners
// are alive.

import (
	"fmt"
	"testing"
)

func testNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://10.0.0.%d:7080", i+1)
	}
	return nodes
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Hash the label so keys look like real content addresses.
		keys[i] = fmt.Sprintf("%016x", hashPoint(fmt.Sprintf("request-%d", i)))
	}
	return keys
}

// moduloOwner is the brute-force baseline placement: hash mod node count.
// Stable hashing makes it deterministic, but nearly every key changes hands
// when the node count changes — exactly what the ring exists to avoid.
func moduloOwner(key string, nodes []string) string {
	return nodes[hashPoint(key)%uint64(len(nodes))]
}

// TestRingDistributionNearUniform: at 1k keys over 4 nodes, every node's
// share stays within 15% of the uniform share.
func TestRingDistributionNearUniform(t *testing.T) {
	nodes := testNodes(4)
	r := newRing(nodes)
	counts := make(map[string]int, len(nodes))
	keys := testKeys(1000)
	for _, k := range keys {
		owner := r.owner(k, nil)
		if owner == "" {
			t.Fatalf("key %s has no owner", k)
		}
		counts[owner]++
	}
	uniform := float64(len(keys)) / float64(len(nodes))
	for _, n := range nodes {
		dev := (float64(counts[n]) - uniform) / uniform
		if dev < -0.15 || dev > 0.15 {
			t.Errorf("node %s owns %d keys, %.1f%% off the uniform %0.f (budget ±15%%)", n, counts[n], dev*100, uniform)
		}
	}
}

// TestRingRemapOnMembershipChange: adding a node to a 4-node ring moves
// roughly 1/5 of the keys (all of them TO the new node), and removing one
// moves roughly 1/4 — while the modulo baseline reshuffles most of the
// keyspace on the same change.
func TestRingRemapOnMembershipChange(t *testing.T) {
	nodes := testNodes(5)
	keys := testKeys(1000)
	four, five := newRing(nodes[:4]), newRing(nodes)

	moved, movedElsewhere, modMoved := 0, 0, 0
	for _, k := range keys {
		before, after := four.owner(k, nil), five.owner(k, nil)
		if before != after {
			moved++
			if after != nodes[4] {
				movedElsewhere++
			}
		}
		if moduloOwner(k, nodes[:4]) != moduloOwner(k, nodes) {
			modMoved++
		}
	}
	if movedElsewhere != 0 {
		t.Errorf("%d keys moved between surviving nodes; additions may only move keys to the new node", movedElsewhere)
	}
	// Expect ~1/5 = 200 moved; allow generous noise but require the ring to
	// beat the modulo baseline by a wide margin.
	if moved < 100 || moved > 350 {
		t.Errorf("adding a 5th node moved %d/1000 keys, want ~200", moved)
	}
	if modMoved < 600 {
		t.Fatalf("modulo baseline moved only %d/1000 keys; the differential below is meaningless", modMoved)
	}
	if moved*2 >= modMoved {
		t.Errorf("ring moved %d keys vs modulo's %d; want under half", moved, modMoved)
	}

	// Removal is the same property through the alive() skip: keys owned by
	// survivors keep their owner when a node dies.
	dead := nodes[2]
	aliveFn := func(n string) bool { return n != dead }
	for _, k := range keys {
		before := five.owner(k, nil)
		after := five.owner(k, aliveFn)
		if before != dead && after != before {
			t.Fatalf("key %s moved %s -> %s though its owner stayed alive", k, before, after)
		}
		if after == dead {
			t.Fatalf("key %s assigned to the dead node", k)
		}
	}
}

// TestRingAllDeadAndEmpty: degenerate inputs answer "" rather than spin.
func TestRingAllDeadAndEmpty(t *testing.T) {
	if got := newRing(nil).owner("k", nil); got != "" {
		t.Fatalf("empty ring owner = %q", got)
	}
	r := newRing(testNodes(3))
	if got := r.owner("k", func(string) bool { return false }); got != "" {
		t.Fatalf("all-dead ring owner = %q", got)
	}
}
