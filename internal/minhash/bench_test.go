package minhash

// Signing benchmarks against the pre-rewrite baseline. legacySign is a
// verbatim reimplementation of the original construction — one SHA-256 per
// (element, hash function) pair — kept here as the recorded reference for
// PERFORMANCE.md's MinHash table: the shipped hasher computes one SHA-256
// per element and derives the m per-function values with a SplitMix64
// finalizer, so the speedup is algorithmic and survives a single-core host.

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"testing"
)

// legacySign is the seed implementation: m independent keyed SHA-256 hashes
// per element, minimum per function.
func legacySign(m int, elements []string) []uint64 {
	sig := make([]uint64, m)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	var key [8]byte
	for i := 0; i < m; i++ {
		binary.BigEndian.PutUint64(key[:], uint64(i)+1)
		for _, e := range elements {
			h := sha256.New()
			h.Write(key[:])
			h.Write([]byte(e))
			v := binary.BigEndian.Uint64(h.Sum(nil)[:8])
			if v < sig[i] {
				sig[i] = v
			}
		}
	}
	return sig
}

func benchElements(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("pkg:component-%05d:1.2.%d", i, i%7)
	}
	return out
}

// BenchmarkSign compares the legacy per-function hashing, the current
// one-base-hash construction, and the sharded parallel path, all at the
// default m=512 over 1,000-element sets.
func BenchmarkSign(b *testing.B) {
	const m = 512
	elements := benchElements(1000)
	b.Run("legacy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if sig := legacySign(m, elements); len(sig) != m {
				b.Fatal("short signature")
			}
		}
	})
	h, err := NewHasher(m)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("current", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if sig, err := h.Sign(elements); err != nil || len(sig) != m {
				b.Fatal("short signature")
			}
		}
	})
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("parallel-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if sig, err := h.SignParallel(elements, workers); err != nil || len(sig) != m {
					b.Fatal("short signature")
				}
			}
		})
	}
}

// TestLegacyEquivalentEstimates: the new family is a different hash family
// (signatures differ) but an equally valid one — estimates from both stay
// within the O(1/√m) bound of the true Jaccard on a known-overlap pair.
func TestLegacyEquivalentEstimates(t *testing.T) {
	const m = 512
	a := benchElements(600)            // 0..599
	bSet := append(benchElements(400), // 0..399 shared
		"x:only-1", "x:only-2")
	truth := 400.0 / 602.0

	h, err := NewHasher(m)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := h.Sign(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := h.Sign(bSet)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Estimate(sa, sb)
	if err != nil {
		t.Fatal(err)
	}
	legacyEst := 0.0
	la, lb := legacySign(m, a), legacySign(m, bSet)
	for i := range la {
		if la[i] == lb[i] {
			legacyEst++
		}
	}
	legacyEst /= m
	bound := 3.0 / 22.6 // 3/√512, generous
	if d := est - truth; d < -bound || d > bound {
		t.Fatalf("current estimate %v vs truth %v exceeds bound", est, truth)
	}
	if d := legacyEst - truth; d < -bound || d > bound {
		t.Fatalf("legacy estimate %v vs truth %v exceeds bound", legacyEst, truth)
	}
}
