package minhash

import (
	"fmt"
	"math"
	"testing"

	"indaas/internal/deps"
)

func TestNewHasher(t *testing.T) {
	if _, err := NewHasher(0); err == nil {
		t.Error("m=0 accepted")
	}
	h, err := NewHasher(16)
	if err != nil || h.M() != 16 {
		t.Errorf("NewHasher(16) = %v, %v", h, err)
	}
}

func TestSignDeterministic(t *testing.T) {
	h, _ := NewHasher(32)
	a, err := h.Sign([]string{"x", "y", "z"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Sign([]string{"z", "y", "x"}) // order must not matter
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("signature depends on element order")
		}
	}
	if _, err := h.Sign(nil); err == nil {
		t.Error("empty set accepted")
	}
}

func TestEstimateIdenticalAndDisjoint(t *testing.T) {
	h, _ := NewHasher(64)
	a, _ := h.Sign([]string{"a", "b", "c"})
	b, _ := h.Sign([]string{"a", "b", "c"})
	j, err := Estimate(a, b)
	if err != nil || j != 1 {
		t.Errorf("identical sets estimate = %v, %v", j, err)
	}
	big1 := make([]string, 200)
	big2 := make([]string, 200)
	for i := range big1 {
		big1[i] = fmt.Sprintf("left-%d", i)
		big2[i] = fmt.Sprintf("right-%d", i)
	}
	s1, _ := h.Sign(big1)
	s2, _ := h.Sign(big2)
	j, err = Estimate(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if j > 0.1 {
		t.Errorf("disjoint sets estimate = %v, want ≈ 0", j)
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := Estimate(); err == nil {
		t.Error("no signatures accepted")
	}
	if _, err := Estimate(Signature{1, 2}, Signature{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := Estimate(Signature{}); err == nil {
		t.Error("empty signature accepted")
	}
}

// TestEstimateAccuracyBound verifies the O(1/√m) error bound empirically:
// for sets with known Jaccard 1/3, the m=1024 estimate should fall within
// 4/√m of the truth (≈ 4 standard errors).
func TestEstimateAccuracyBound(t *testing.T) {
	const m = 1024
	h, _ := NewHasher(m)
	// |A|=200, |B|=200, overlap 100 → J = 100/300.
	var a, b []string
	for i := 0; i < 100; i++ {
		shared := fmt.Sprintf("shared-%d", i)
		a = append(a, shared, fmt.Sprintf("only-a-%d", i))
		b = append(b, shared, fmt.Sprintf("only-b-%d", i))
	}
	sa, _ := h.Sign(a)
	sb, _ := h.Sign(b)
	got, err := Estimate(sa, sb)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / 3.0
	bound := 4.0 / math.Sqrt(m)
	if math.Abs(got-want) > bound {
		t.Errorf("estimate %v deviates from %v by more than %v", got, want, bound)
	}
}

func TestEstimateImprovesWithM(t *testing.T) {
	var a, b []string
	for i := 0; i < 150; i++ {
		shared := fmt.Sprintf("s-%d", i)
		a = append(a, shared)
		b = append(b, shared)
	}
	for i := 0; i < 50; i++ {
		a = append(a, fmt.Sprintf("a-%d", i))
		b = append(b, fmt.Sprintf("b-%d", i))
	}
	truth := deps.Jaccard(deps.NewComponentSet(a...), deps.NewComponentSet(b...))
	errAt := func(m int) float64 {
		h, _ := NewHasher(m)
		sa, _ := h.Sign(a)
		sb, _ := h.Sign(b)
		got, err := Estimate(sa, sb)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(got - truth)
	}
	// Not strictly monotone per-seed, so compare small m to a much larger m.
	if e16, e4096 := errAt(16), errAt(4096); e4096 > e16 && e4096 > 0.05 {
		t.Errorf("error did not shrink with m: m=16 err %v, m=4096 err %v", e16, e4096)
	}
}

func TestThreeWayEstimate(t *testing.T) {
	h, _ := NewHasher(2048)
	var a, b, c []string
	for i := 0; i < 90; i++ {
		s := fmt.Sprintf("all-%d", i)
		a, b, c = append(a, s), append(b, s), append(c, s)
	}
	for i := 0; i < 30; i++ {
		a = append(a, fmt.Sprintf("a-%d", i))
		b = append(b, fmt.Sprintf("b-%d", i))
		c = append(c, fmt.Sprintf("c-%d", i))
	}
	truth := deps.Jaccard(
		deps.NewComponentSet(a...), deps.NewComponentSet(b...), deps.NewComponentSet(c...))
	sa, _ := h.Sign(a)
	sb, _ := h.Sign(b)
	sc, _ := h.Sign(c)
	got, err := Estimate(sa, sb, sc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-truth) > 0.06 {
		t.Errorf("3-way estimate %v vs truth %v", got, truth)
	}
}

func TestSignatureElements(t *testing.T) {
	sig := Signature{0x0102030405060708, 0xffffffffffffffff}
	elems := sig.Elements()
	if len(elems) != 2 {
		t.Fatalf("elements = %v", elems)
	}
	if elems[0] != "0:0102030405060708" || elems[1] != "1:ffffffffffffffff" {
		t.Errorf("elements = %v", elems)
	}
	// Agreement of elements must equal agreement of signature positions:
	// shared minima produce identical strings, position-tagged.
	other := Signature{0x0102030405060708, 0x1}
	inter := deps.NewComponentSet(sig.Elements()...).Intersect(deps.NewComponentSet(other.Elements()...))
	if inter.Len() != 1 {
		t.Errorf("element intersection = %v", inter.Sorted())
	}
}
