// Package minhash implements MinHash signatures for Jaccard similarity
// estimation (§4.2.2, [13]).
//
// A signature is the per-function minimum of m salted hash functions over a
// set. For k sets, the Jaccard similarity J(S₀,…,S_{k−1}) is estimated as
// δ/m where δ counts the signature positions on which all k signatures
// agree; the expected error is O(1/√m) [13].
//
// Construction: each element is hashed once with SHA-256 to a 64-bit base
// value, and the i-th function's value is derived from the base with a
// salted SplitMix64 finalizer. One cryptographic hash per element — instead
// of m — keeps signing O(|S| + |S|·m) cheap word operations rather than
// O(|S|·m) full digests; the derived family is the standard
// one-base-hash-many-mixers construction used by production MinHash
// implementations, and the empirical accuracy tests in this package hold the
// O(1/√m) bound against it.
//
// Security model: MinHash is a compression step, not a privacy mechanism.
// A signature reveals the per-function minima of the set it summarizes —
// parties that must not learn each other's minima run the private set
// intersection protocols of internal/psi over the signature *elements*
// (§4.2.4): the P-SOP input becomes the m strings "<i>:<minvalue>" instead
// of the raw components, so only the agreement count δ is learned.
package minhash

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
)

// Signature is the vector of per-function minima of one set.
type Signature []uint64

// Hasher computes signatures with a fixed family of m salted hash functions.
type Hasher struct {
	m     int
	seeds []uint64
}

// NewHasher returns a Hasher with m hash functions. Larger m gives smaller
// estimation error at proportionally higher cost.
func NewHasher(m int) (*Hasher, error) {
	if m <= 0 {
		return nil, fmt.Errorf("minhash: need at least one hash function, got %d", m)
	}
	h := &Hasher{m: m, seeds: make([]uint64, m)}
	for i := range h.seeds {
		h.seeds[i] = splitmix64(uint64(i) + 1)
	}
	return h, nil
}

// M returns the number of hash functions.
func (h *Hasher) M() int { return h.m }

// splitmix64 is the SplitMix64 finalizer: a bijective 64-bit mixer with
// full avalanche, used both to derive the per-function seeds and to mix the
// base hash under each seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// baseHash is the per-element cryptographic base: the first 8 bytes of
// SHA-256(elem).
func baseHash(elem string) uint64 {
	sum := sha256.Sum256([]byte(elem))
	return binary.BigEndian.Uint64(sum[:8])
}

// Sign computes the signature of a set of elements. Signing an empty set is
// an error: its minima are undefined.
func (h *Hasher) Sign(elements []string) (Signature, error) {
	return h.SignParallel(elements, 1)
}

// SignParallel computes the same signature as Sign with the elements
// partitioned across up to workers goroutines, each folding a partial
// minima vector that is merged at the end. The minimum is commutative, so
// the result is identical for every worker count; workers <= 1 is the
// sequential path.
func (h *Hasher) SignParallel(elements []string, workers int) (Signature, error) {
	if len(elements) == 0 {
		return nil, fmt.Errorf("minhash: cannot sign an empty set")
	}
	if workers > len(elements) {
		workers = len(elements)
	}
	if workers <= 1 {
		sig := newMinima(h.m)
		h.fold(sig, elements)
		return sig, nil
	}
	parts := make([]Signature, workers)
	var wg sync.WaitGroup
	chunk := (len(elements) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(elements) {
			hi = len(elements)
		}
		part := newMinima(h.m)
		parts[w] = part
		wg.Add(1)
		go func(els []string) {
			defer wg.Done()
			h.fold(part, els)
		}(elements[lo:hi])
	}
	wg.Wait()
	sig := parts[0]
	for _, part := range parts[1:] {
		for i, v := range part {
			if v < sig[i] {
				sig[i] = v
			}
		}
	}
	return sig, nil
}

// newMinima allocates a minima vector initialized to the maximum value.
func newMinima(m int) Signature {
	sig := make(Signature, m)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	return sig
}

// fold lowers sig's minima by the given elements.
func (h *Hasher) fold(sig Signature, elements []string) {
	for _, e := range elements {
		base := baseHash(e)
		for i, seed := range h.seeds {
			if v := splitmix64(base ^ seed); v < sig[i] {
				sig[i] = v
			}
		}
	}
}

// Estimate approximates the k-way Jaccard similarity of the signed sets as
// the fraction of positions where all signatures agree.
func Estimate(sigs ...Signature) (float64, error) {
	if len(sigs) == 0 {
		return 0, fmt.Errorf("minhash: no signatures")
	}
	m := len(sigs[0])
	for _, s := range sigs[1:] {
		if len(s) != m {
			return 0, fmt.Errorf("minhash: signature lengths differ (%d vs %d)", m, len(s))
		}
	}
	if m == 0 {
		return 0, fmt.Errorf("minhash: empty signatures")
	}
	agree := 0
	for i := 0; i < m; i++ {
		same := true
		for _, s := range sigs[1:] {
			if s[i] != sigs[0][i] {
				same = false
				break
			}
		}
		if same {
			agree++
		}
	}
	return float64(agree) / float64(m), nil
}

// Elements renders a signature as PSI-ready string elements "<i>:<min>", so
// that a private set intersection over signatures counts exactly the
// agreeing positions (§4.2.4).
func (s Signature) Elements() []string {
	out := make([]string, len(s))
	for i, v := range s {
		out[i] = fmt.Sprintf("%d:%016x", i, v)
	}
	return out
}
