// Package minhash implements MinHash signatures for Jaccard similarity
// estimation (§4.2.2, [13]).
//
// A signature is the per-function minimum of m salted hash functions over a
// set. For k sets, the Jaccard similarity J(S₀,…,S_{k−1}) is estimated as
// δ/m where δ counts the signature positions on which all k signatures
// agree; the expected error is O(1/√m) [13].
//
// PIA uses MinHash to shrink large component-sets before the private set
// intersection protocol (§4.2.4): the P-SOP input becomes the m signature
// elements ("<i>:<minvalue>") instead of the raw components.
package minhash

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Signature is the vector of per-function minima of one set.
type Signature []uint64

// Hasher computes signatures with a fixed family of m salted hash functions.
type Hasher struct {
	m int
}

// NewHasher returns a Hasher with m hash functions. Larger m gives smaller
// estimation error at proportionally higher cost.
func NewHasher(m int) (*Hasher, error) {
	if m <= 0 {
		return nil, fmt.Errorf("minhash: need at least one hash function, got %d", m)
	}
	return &Hasher{m: m}, nil
}

// M returns the number of hash functions.
func (h *Hasher) M() int { return h.m }

// hash64 computes the i-th hash function: the first 8 bytes of
// SHA-256(i ‖ elem).
func hash64(i int, elem string) uint64 {
	var salt [4]byte
	binary.LittleEndian.PutUint32(salt[:], uint32(i))
	d := sha256.New()
	d.Write(salt[:])
	d.Write([]byte(elem))
	var sum [sha256.Size]byte
	d.Sum(sum[:0])
	return binary.BigEndian.Uint64(sum[:8])
}

// Sign computes the signature of a set of elements. Signing an empty set is
// an error: its minima are undefined.
func (h *Hasher) Sign(elements []string) (Signature, error) {
	if len(elements) == 0 {
		return nil, fmt.Errorf("minhash: cannot sign an empty set")
	}
	sig := make(Signature, h.m)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for _, e := range elements {
		for i := 0; i < h.m; i++ {
			if v := hash64(i, e); v < sig[i] {
				sig[i] = v
			}
		}
	}
	return sig, nil
}

// Estimate approximates the k-way Jaccard similarity of the signed sets as
// the fraction of positions where all signatures agree.
func Estimate(sigs ...Signature) (float64, error) {
	if len(sigs) == 0 {
		return 0, fmt.Errorf("minhash: no signatures")
	}
	m := len(sigs[0])
	for _, s := range sigs[1:] {
		if len(s) != m {
			return 0, fmt.Errorf("minhash: signature lengths differ (%d vs %d)", m, len(s))
		}
	}
	if m == 0 {
		return 0, fmt.Errorf("minhash: empty signatures")
	}
	agree := 0
	for i := 0; i < m; i++ {
		same := true
		for _, s := range sigs[1:] {
			if s[i] != sigs[0][i] {
				same = false
				break
			}
		}
		if same {
			agree++
		}
	}
	return float64(agree) / float64(m), nil
}

// Elements renders a signature as PSI-ready string elements "<i>:<min>", so
// that a private set intersection over signatures counts exactly the
// agreeing positions (§4.2.4).
func (s Signature) Elements() []string {
	out := make([]string, len(s))
	for i, v := range s {
		out[i] = fmt.Sprintf("%d:%016x", i, v)
	}
	return out
}
