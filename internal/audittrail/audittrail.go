// Package audittrail implements the paper's §5.2 accountability mechanism:
// "trust but leave an audit trail". A cloud provider participating in PIA
// might under-declare its component-set to appear more independent; to deter
// this, every provider commits to the exact dataset it fed into each P-SOP
// run — a signed Merkle root over the normalized component-set — and a
// specially-authorized authority can later "meta-audit" the run by having
// the provider reveal the dataset (or individual elements with inclusion
// proofs) and checking it against the commitment. A persistently dishonest
// participant risks eventually getting caught.
package audittrail

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"time"
)

// Commitment is a provider's signed record of one PIA run's input.
type Commitment struct {
	Provider string
	RunID    string
	// Root is the Merkle root of the canonicalized dataset.
	Root []byte
	// Count is the number of distinct elements committed to.
	Count int
	// At is the commitment time.
	At time.Time
	// PublicKey and Signature authenticate the record.
	PublicKey ed25519.PublicKey
	Signature []byte
}

// Signer holds a provider's signing identity.
type Signer struct {
	provider string
	priv     ed25519.PrivateKey
	pub      ed25519.PublicKey
}

// NewSigner generates a fresh signing identity for a provider.
func NewSigner(provider string) (*Signer, error) {
	if provider == "" {
		return nil, fmt.Errorf("audittrail: provider name required")
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("audittrail: generating key: %w", err)
	}
	return &Signer{provider: provider, priv: priv, pub: pub}, nil
}

// PublicKey returns the signer's verification key, to be registered with
// the meta-audit authority out of band.
func (s *Signer) PublicKey() ed25519.PublicKey { return s.pub }

// Commit signs the dataset used in a PIA run.
func (s *Signer) Commit(runID string, dataset []string, at time.Time) (*Commitment, error) {
	if runID == "" {
		return nil, fmt.Errorf("audittrail: run ID required")
	}
	canon := canonicalize(dataset)
	if len(canon) == 0 {
		return nil, fmt.Errorf("audittrail: empty dataset")
	}
	root := merkleRoot(canon)
	c := &Commitment{
		Provider:  s.provider,
		RunID:     runID,
		Root:      root,
		Count:     len(canon),
		At:        at.UTC().Truncate(time.Second),
		PublicKey: s.pub,
	}
	c.Signature = ed25519.Sign(s.priv, c.message())
	return c, nil
}

// message is the canonical signed byte string.
func (c *Commitment) message() []byte {
	var buf bytes.Buffer
	buf.WriteString("indaas-pia-commitment\x00")
	buf.WriteString(c.Provider)
	buf.WriteByte(0)
	buf.WriteString(c.RunID)
	buf.WriteByte(0)
	buf.Write(c.Root)
	var cnt [8]byte
	binary.BigEndian.PutUint64(cnt[:], uint64(c.Count))
	buf.Write(cnt[:])
	var ts [8]byte
	binary.BigEndian.PutUint64(ts[:], uint64(c.At.Unix()))
	buf.Write(ts[:])
	return buf.Bytes()
}

// Verify checks the commitment's signature.
func (c *Commitment) Verify() error {
	if len(c.PublicKey) != ed25519.PublicKeySize {
		return fmt.Errorf("audittrail: bad public key size %d", len(c.PublicKey))
	}
	if !ed25519.Verify(c.PublicKey, c.message(), c.Signature) {
		return fmt.Errorf("audittrail: signature verification failed for %s/%s", c.Provider, c.RunID)
	}
	return nil
}

// MetaAudit verifies a full dataset reveal against a commitment: the
// signature must check out and the revealed dataset must hash to the
// committed root with the committed cardinality. This is the "IRS-style"
// spot check of §5.2.
func MetaAudit(c *Commitment, revealed []string) error {
	if err := c.Verify(); err != nil {
		return err
	}
	canon := canonicalize(revealed)
	if len(canon) != c.Count {
		return fmt.Errorf("audittrail: revealed %d distinct elements, committed to %d", len(canon), c.Count)
	}
	if !bytes.Equal(merkleRoot(canon), c.Root) {
		return fmt.Errorf("audittrail: revealed dataset does not match the committed root")
	}
	return nil
}

// Proof is a Merkle inclusion proof for one element, allowing a provider to
// demonstrate that a specific component was part of a committed dataset
// without revealing the rest.
type Proof struct {
	Element string
	// Index is the leaf position in the canonicalized dataset.
	Index int
	// Siblings are the hashes combined bottom-up; Left[i] tells whether
	// Siblings[i] is the left operand.
	Siblings [][]byte
	Left     []bool
}

// Prove builds an inclusion proof for element within dataset.
func Prove(dataset []string, element string) (*Proof, error) {
	canon := canonicalize(dataset)
	idx := sort.SearchStrings(canon, element)
	if idx >= len(canon) || canon[idx] != element {
		return nil, fmt.Errorf("audittrail: element not in dataset")
	}
	level := leafHashes(canon)
	proof := &Proof{Element: element, Index: idx}
	pos := idx
	for len(level) > 1 {
		sib := pos ^ 1
		if sib >= len(level) {
			sib = pos // odd node duplicated
		}
		proof.Siblings = append(proof.Siblings, level[sib])
		proof.Left = append(proof.Left, sib < pos)
		level = nextLevel(level)
		pos /= 2
	}
	return proof, nil
}

// VerifyProof checks an inclusion proof against a committed root.
func VerifyProof(root []byte, p *Proof) bool {
	if p == nil {
		return false
	}
	if len(p.Siblings) != len(p.Left) {
		return false
	}
	h := leafHash(p.Element)
	for i, sib := range p.Siblings {
		if p.Left[i] {
			h = nodeHash(sib, h)
		} else {
			h = nodeHash(h, sib)
		}
	}
	return bytes.Equal(h, root)
}

// canonicalize sorts and deduplicates a dataset.
func canonicalize(dataset []string) []string {
	out := append([]string(nil), dataset...)
	sort.Strings(out)
	dedup := out[:0]
	for i, e := range out {
		if i == 0 || out[i-1] != e {
			dedup = append(dedup, e)
		}
	}
	return dedup
}

func leafHash(e string) []byte {
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write([]byte(e))
	return h.Sum(nil)
}

func nodeHash(l, r []byte) []byte {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(l)
	h.Write(r)
	return h.Sum(nil)
}

func leafHashes(canon []string) [][]byte {
	out := make([][]byte, len(canon))
	for i, e := range canon {
		out[i] = leafHash(e)
	}
	return out
}

func nextLevel(level [][]byte) [][]byte {
	out := make([][]byte, 0, (len(level)+1)/2)
	for i := 0; i < len(level); i += 2 {
		if i+1 < len(level) {
			out = append(out, nodeHash(level[i], level[i+1]))
		} else {
			out = append(out, nodeHash(level[i], level[i])) // duplicate odd node
		}
	}
	return out
}

// merkleRoot computes the root over the canonical dataset.
func merkleRoot(canon []string) []byte {
	level := leafHashes(canon)
	for len(level) > 1 {
		level = nextLevel(level)
	}
	return level[0]
}

// MerkleRoot exposes the root computation (canonicalizing first) for tests
// and external verifiers.
func MerkleRoot(dataset []string) []byte {
	canon := canonicalize(dataset)
	if len(canon) == 0 {
		return nil
	}
	return merkleRoot(canon)
}
