package audittrail

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

var when = time.Date(2014, 10, 6, 12, 0, 0, 0, time.UTC) // OSDI'14

func dataset() []string {
	return []string{"pkg:libssl=1.0.1k", "pkg:libc6=2.19", "c1/router-a", "c1/db", "c1/cache"}
}

func TestCommitAndVerify(t *testing.T) {
	s, err := NewSigner("Cloud1")
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Commit("run-1", dataset(), when)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if c.Count != 5 || c.Provider != "Cloud1" {
		t.Errorf("commitment header: %+v", c)
	}
	// Dataset order must not matter.
	shuffled := []string{"c1/db", "pkg:libc6=2.19", "c1/cache", "pkg:libssl=1.0.1k", "c1/router-a"}
	c2, err := s.Commit("run-1", shuffled, when)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Root, c2.Root) {
		t.Error("root depends on element order")
	}
}

func TestCommitValidation(t *testing.T) {
	s, err := NewSigner("Cloud1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit("", dataset(), when); err == nil {
		t.Error("empty run ID accepted")
	}
	if _, err := s.Commit("r", nil, when); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := NewSigner(""); err == nil {
		t.Error("unnamed signer accepted")
	}
}

func TestTamperedCommitmentRejected(t *testing.T) {
	s, err := NewSigner("Cloud1")
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Commit("run-1", dataset(), when)
	if err != nil {
		t.Fatal(err)
	}
	cases := []func(*Commitment){
		func(c *Commitment) { c.Provider = "Cloud2" },
		func(c *Commitment) { c.RunID = "run-2" },
		func(c *Commitment) { c.Count = 4 },
		func(c *Commitment) { c.Root[0] ^= 1 },
		func(c *Commitment) { c.At = c.At.Add(time.Hour) },
		func(c *Commitment) { c.Signature[0] ^= 1 },
		func(c *Commitment) { c.PublicKey = c.PublicKey[:16] },
	}
	for i, mutate := range cases {
		cp := *c
		cp.Root = append([]byte(nil), c.Root...)
		cp.Signature = append([]byte(nil), c.Signature...)
		cp.PublicKey = append([]byte(nil), c.PublicKey...)
		mutate(&cp)
		if err := cp.Verify(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestMetaAudit(t *testing.T) {
	s, err := NewSigner("Cloud1")
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset()
	c, err := s.Commit("run-1", ds, when)
	if err != nil {
		t.Fatal(err)
	}
	if err := MetaAudit(c, ds); err != nil {
		t.Fatalf("honest reveal rejected: %v", err)
	}
	// The §5.2 attack: a provider under-declares its dataset to look more
	// independent, then cannot produce a matching reveal.
	if err := MetaAudit(c, ds[:4]); err == nil {
		t.Error("under-declared reveal accepted")
	}
	swapped := append([]string(nil), ds...)
	swapped[0] = "pkg:libssl=1.0.2"
	if err := MetaAudit(c, swapped); err == nil {
		t.Error("substituted reveal accepted")
	}
}

func TestInclusionProofs(t *testing.T) {
	ds := dataset()
	root := MerkleRoot(ds)
	for _, e := range ds {
		p, err := Prove(ds, e)
		if err != nil {
			t.Fatalf("Prove(%s): %v", e, err)
		}
		if !VerifyProof(root, p) {
			t.Errorf("proof for %s rejected", e)
		}
		// Proof must not verify for a different element.
		p.Element = "pkg:evil=1"
		if VerifyProof(root, p) {
			t.Error("forged element accepted")
		}
	}
	if _, err := Prove(ds, "not-present"); err == nil {
		t.Error("proof for absent element produced")
	}
	if VerifyProof(root, nil) {
		t.Error("nil proof accepted")
	}
}

func TestInclusionProofProperty(t *testing.T) {
	f := func(raw []uint16, pick uint8) bool {
		if len(raw) == 0 {
			return true
		}
		ds := make([]string, len(raw))
		for i, v := range raw {
			ds[i] = fmt.Sprintf("comp-%d", v%64)
		}
		root := MerkleRoot(ds)
		target := ds[int(pick)%len(ds)]
		p, err := Prove(ds, target)
		if err != nil {
			return false
		}
		if !VerifyProof(root, p) {
			return false
		}
		// Tampering with any sibling must break the proof (unless the
		// dataset has a single element and no siblings exist).
		if len(p.Siblings) > 0 {
			p.Siblings[0][0] ^= 1
			if VerifyProof(root, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMerkleRootEdgeCases(t *testing.T) {
	if MerkleRoot(nil) != nil {
		t.Error("empty dataset should have nil root")
	}
	one := MerkleRoot([]string{"only"})
	if len(one) == 0 {
		t.Error("single-element root missing")
	}
	if !bytes.Equal(MerkleRoot([]string{"a", "a", "b"}), MerkleRoot([]string{"b", "a"})) {
		t.Error("duplicates should not change the root")
	}
}
