package telemetry

import "context"

type traceKey struct{}

// WithTrace attaches a trace to the context so pipeline stages deep in
// sia/riskgroup/delta code can record phases without explicit plumbing.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the attached trace, or nil (a valid no-op recorder)
// when none is attached.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
