// Package telemetry is the daemon's zero-dependency observability layer:
// context-carried phase traces for individual computations, lock-free
// log-bucketed latency histograms with Prometheus text exposition, runtime
// and build-info gauges, and slog-based HTTP request logging. Everything is
// allocation-conscious: a nil *Trace is a valid no-op recorder, so hot paths
// that never start a computation pay nothing.
package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Trace records the named phases of one pipeline computation: queue-wait,
// graph-build, minimal-rgs, sampling, splice, persist, notify. Phases may
// overlap (concurrent per-spec audits) and are recorded from multiple
// goroutines; a small mutex guards the slice. All methods are safe on a nil
// receiver so instrumented code never needs to check whether a trace is
// attached to its context.
type Trace struct {
	start time.Time

	mu     sync.Mutex
	phases []Phase
	counts map[string]int64
}

// Phase is one completed (or still-open) span inside a trace. Offsets and
// durations are monotonic nanoseconds relative to the trace start.
type Phase struct {
	Name       string `json:"name"`
	StartNS    int64  `json:"start_ns"`
	DurationNS int64  `json:"duration_ns"`
	Running    bool   `json:"running,omitempty"`
}

// New starts a trace whose clock begins now.
func New() *Trace { return NewAt(time.Now()) }

// NewAt starts a trace backdated to t, so that work done before the trace
// object existed (journaling an accepted job, for example) still lands
// inside the first phase instead of in an unaccounted gap.
func NewAt(t time.Time) *Trace {
	return &Trace{start: t, counts: make(map[string]int64)}
}

// Began reports when the trace's clock started.
func (t *Trace) Began() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Start opens a phase beginning now and returns the closure that ends it.
// The phase is visible in snapshots immediately (Running=true) so a stuck
// job's trace shows where it is stuck.
func (t *Trace) Start(name string) func() {
	return t.StartAt(name, time.Now())
}

// StartAt opens a phase beginning at the given instant.
func (t *Trace) StartAt(name string, at time.Time) func() {
	if t == nil {
		return func() {}
	}
	t.mu.Lock()
	idx := len(t.phases)
	t.phases = append(t.phases, Phase{Name: name, StartNS: at.Sub(t.start).Nanoseconds(), Running: true})
	t.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			d := time.Since(at).Nanoseconds()
			t.mu.Lock()
			t.phases[idx].DurationNS = d
			t.phases[idx].Running = false
			t.mu.Unlock()
		})
	}
}

// Span records an already-completed phase.
func (t *Trace) Span(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.phases = append(t.phases, Phase{Name: name, StartNS: start.Sub(t.start).Nanoseconds(), DurationNS: d.Nanoseconds()})
	t.mu.Unlock()
}

// Add accumulates a named count (rgs_found, rounds_sampled, subjects_spliced).
func (t *Trace) Add(name string, n int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.counts[name] += n
	t.mu.Unlock()
}

// Snapshot returns the phases recorded so far, ordered by start offset.
// The returned slice is a copy; nil receivers return nil.
func (t *Trace) Snapshot() []Phase {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Phase, len(t.phases))
	copy(out, t.phases)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartNS < out[j].StartNS })
	return out
}

// Counts returns a copy of the accumulated counts, or nil when empty.
func (t *Trace) Counts() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.counts) == 0 {
		return nil
	}
	out := make(map[string]int64, len(t.counts))
	for k, v := range t.counts {
		out[k] = v
	}
	return out
}
