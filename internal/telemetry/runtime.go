package telemetry

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// RuntimeStats is a point-in-time view of process health for /metrics and
// /healthz: goroutine count, live heap bytes, and cumulative GC pause time.
type RuntimeStats struct {
	Goroutines   int
	HeapBytes    uint64
	GCPauseTotal time.Duration
	NumGC        uint32
}

// ReadRuntime samples the Go runtime. ReadMemStats stops the world for a
// moment, so callers should sample per scrape, not per request.
func ReadRuntime() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		Goroutines:   runtime.NumGoroutine(),
		HeapBytes:    ms.HeapAlloc,
		GCPauseTotal: time.Duration(ms.PauseTotalNs),
		NumGC:        ms.NumGC,
	}
}

// BuildInfo identifies the running binary for the auditd_build_info metric.
type BuildInfo struct {
	GoVersion string
	Revision  string
	Modified  bool
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// ReadBuild returns the binary's build identity from debug.ReadBuildInfo,
// cached after the first call. Revision is "unknown" when the binary was
// built outside version control (go test, plain go build of a tarball).
func ReadBuild() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{GoVersion: runtime.Version(), Revision: "unknown"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.GoVersion != "" {
			buildInfo.GoVersion = bi.GoVersion
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				if s.Value != "" {
					buildInfo.Revision = s.Value
				}
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}
