package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"
)

// NewLogger builds the daemon's slog logger. level is one of
// debug|info|warn|error; format is text|json.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
	}
}

// requestInfo is the mutable per-request annotation holder the middleware
// plants in the context so handlers can tag the request with a job id after
// routing has happened.
type requestInfo struct {
	mu    sync.Mutex
	jobID string
}

type requestInfoKey struct{}

// AnnotateJob tags the in-flight HTTP request (if any) with the job id it
// resolved to, so the access log line links to /v1/jobs/{id}/trace.
func AnnotateJob(r *http.Request, id string) {
	ri, _ := r.Context().Value(requestInfoKey{}).(*requestInfo)
	if ri == nil || id == "" {
		return
	}
	ri.mu.Lock()
	ri.jobID = id
	ri.mu.Unlock()
}

// statusWriter captures the response status for the access log. It forwards
// Flush so SSE handlers (GET /v1/watch) keep streaming through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if w.status == 0 {
		w.status = http.StatusOK // flushing commits the implicit 200
	}
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// LogRequests wraps an http.Handler with structured access logging: method,
// path, status, duration, and the job id if the handler annotated one.
// Scrape endpoints (/metrics, /healthz) log at debug so an info-level log
// isn't dominated by the monitoring loop.
func LogRequests(log *slog.Logger, next http.Handler) http.Handler {
	if log == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ri := &requestInfo{}
		r = r.WithContext(withRequestInfo(r.Context(), ri))
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		lvl := slog.LevelInfo
		if r.URL.Path == "/metrics" || r.URL.Path == "/healthz" {
			lvl = slog.LevelDebug
		}
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"duration_ms", float64(time.Since(start).Microseconds()) / 1000,
		}
		ri.mu.Lock()
		if ri.jobID != "" {
			attrs = append(attrs, "job", ri.jobID)
		}
		ri.mu.Unlock()
		if r.RemoteAddr != "" {
			attrs = append(attrs, "remote", r.RemoteAddr)
		}
		log.Log(r.Context(), lvl, "request", attrs...)
	})
}

// withRequestInfo plants a request-annotation holder in the context.
func withRequestInfo(ctx context.Context, ri *requestInfo) context.Context {
	return context.WithValue(ctx, requestInfoKey{}, ri)
}
