package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math/bits"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of finite histogram buckets. Bounds grow as
// 1µs·2^i for i in [0, NumBuckets): 1µs, 2µs, 4µs, ... ≈ 1074s. Anything
// slower lands in the implicit +Inf bucket.
const NumBuckets = 31

// BucketBound returns the inclusive upper bound of finite bucket i.
func BucketBound(i int) time.Duration {
	return time.Microsecond << i
}

// Histogram is a lock-free log-bucketed latency histogram. Observe is a
// single atomic add per bucket plus one for the sum, so it is safe (and
// cheap) on hot paths shared by many goroutines. The zero value is ready
// to use.
type Histogram struct {
	buckets  [NumBuckets]atomic.Uint64
	overflow atomic.Uint64
	sumNS    atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.sumNS.Add(d.Nanoseconds())
	// Smallest i with d ≤ 1µs·2^i, via ceil-division to whole microseconds.
	q := uint64(d+time.Microsecond-1) / uint64(time.Microsecond)
	var idx int
	if q > 1 {
		idx = bits.Len64(q - 1)
	}
	if idx >= NumBuckets {
		h.overflow.Add(1)
		return
	}
	h.buckets[idx].Add(1)
}

// ObserveSince records the time elapsed since start, for use as a one-line
// defer at the top of an instrumented function.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start)) }

// Snapshot returns a point-in-time copy of the histogram. Buckets in the
// snapshot are per-bucket counts (not cumulative); rendering makes them
// cumulative as Prometheus requires.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Overflow = h.overflow.Load()
	s.Sum = time.Duration(h.sumNS.Load())
	return s
}

// HistogramSnapshot is an immutable copy of a Histogram's state, used both
// for /metrics rendering and for client-side analysis of scraped text.
type HistogramSnapshot struct {
	Buckets  [NumBuckets]uint64
	Overflow uint64
	Sum      time.Duration
}

// Count returns the total number of observations.
func (s HistogramSnapshot) Count() uint64 {
	n := s.Overflow
	for _, c := range s.Buckets {
		n += c
	}
	return n
}

// Quantile estimates the q-quantile (0 < q ≤ 1) by linear interpolation
// within the containing bucket. Samples in the +Inf bucket are credited the
// largest finite bound; an empty histogram reports 0.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	total := s.Count()
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum >= rank {
			lo := time.Duration(0)
			if i > 0 {
				lo = BucketBound(i - 1)
			}
			hi := BucketBound(i)
			frac := (rank - prev) / float64(c)
			return lo + time.Duration(frac*float64(hi-lo))
		}
	}
	return BucketBound(NumBuckets - 1)
}

// bucketLabel formats a bucket bound in seconds the way Prometheus clients
// expect it in the le label.
func bucketLabel(i int) string {
	return strconv.FormatFloat(BucketBound(i).Seconds(), 'g', -1, 64)
}

// WritePrometheus renders the snapshot in Prometheus text exposition format:
// cumulative _bucket{le=...} samples, _sum in seconds, and _count. Empty
// buckets are skipped (the series stays cumulative without them) but the
// first and +Inf buckets are always present so scrapers see a well-formed
// histogram even before any observations.
func (s HistogramSnapshot) WritePrometheus(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if c == 0 && i > 0 {
			continue
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, bucketLabel(i), cum)
	}
	cum += s.Overflow
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, strconv.FormatFloat(s.Sum.Seconds(), 'g', -1, 64))
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}

// ParseHistogram recovers a snapshot from Prometheus text exposition, the
// inverse of WritePrometheus. It lets clients (loadgen) report quantiles
// from the daemon's own histograms rather than re-measuring client-side.
// Returns false when no samples for the metric appear in the text.
func ParseHistogram(exposition, name string) (HistogramSnapshot, bool) {
	bounds := make(map[string]int, NumBuckets)
	for i := 0; i < NumBuckets; i++ {
		bounds[bucketLabel(i)] = i
	}
	var s HistogramSnapshot
	cums := make(map[int]uint64)
	var inf uint64
	found := false
	sc := bufio.NewScanner(strings.NewReader(exposition))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, name+"_bucket{le=\""):
			rest := strings.TrimPrefix(line, name+"_bucket{le=\"")
			le, val, ok := strings.Cut(rest, "\"} ")
			if !ok {
				continue
			}
			n, err := strconv.ParseUint(strings.TrimSpace(val), 10, 64)
			if err != nil {
				continue
			}
			found = true
			if le == "+Inf" {
				inf = n
			} else if i, ok := bounds[le]; ok {
				cums[i] = n
			}
		case strings.HasPrefix(line, name+"_sum "):
			f, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+"_sum ")), 64)
			if err == nil {
				found = true
				s.Sum = time.Duration(f * float64(time.Second))
			}
		}
	}
	if !found {
		return HistogramSnapshot{}, false
	}
	// De-cumulate: each bucket's count is its cumulative value minus the
	// largest cumulative value of any earlier bucket (skipped buckets have
	// the same cumulative count as their predecessor).
	var prev uint64
	for i := 0; i < NumBuckets; i++ {
		c, ok := cums[i]
		if !ok {
			continue
		}
		if c > prev {
			s.Buckets[i] = c - prev
			prev = c
		}
	}
	if inf > prev {
		s.Overflow = inf - prev
	}
	return s, true
}
