package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracePhases(t *testing.T) {
	base := time.Now()
	tr := NewAt(base)
	if got := tr.Began(); !got.Equal(base) {
		t.Fatalf("Began = %v, want %v", got, base)
	}
	end := tr.StartAt("queue-wait", base)
	snap := tr.Snapshot()
	if len(snap) != 1 || !snap[0].Running {
		t.Fatalf("open phase not visible in snapshot: %+v", snap)
	}
	end()
	end() // idempotent
	tr.Span("graph-build", base.Add(5*time.Millisecond), 2*time.Millisecond)
	tr.Add("rgs_found", 3)
	tr.Add("rgs_found", 4)

	snap = tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("want 2 phases, got %d", len(snap))
	}
	if snap[0].Name != "queue-wait" || snap[0].Running {
		t.Fatalf("phase 0 = %+v", snap[0])
	}
	if snap[1].Name != "graph-build" || snap[1].StartNS != (5*time.Millisecond).Nanoseconds() ||
		snap[1].DurationNS != (2*time.Millisecond).Nanoseconds() {
		t.Fatalf("phase 1 = %+v", snap[1])
	}
	if got := tr.Counts()["rgs_found"]; got != 7 {
		t.Fatalf("rgs_found = %d, want 7", got)
	}
	// Snapshot orders by start offset even when recorded out of order.
	tr.Span("early", base.Add(time.Millisecond), time.Millisecond)
	snap = tr.Snapshot()
	if snap[1].Name != "early" {
		t.Fatalf("snapshot not sorted by start: %+v", snap)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Start("x")()
	tr.StartAt("x", time.Now())()
	tr.Span("x", time.Now(), time.Second)
	tr.Add("x", 1)
	if tr.Snapshot() != nil || tr.Counts() != nil {
		t.Fatal("nil trace must snapshot to nil")
	}
	if !tr.Began().IsZero() {
		t.Fatal("nil trace Began must be zero")
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				end := tr.Start("p")
				tr.Add("n", 1)
				end()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Snapshot()); got != 800 {
		t.Fatalf("want 800 phases, got %d", got)
	}
	if got := tr.Counts()["n"]; got != 800 {
		t.Fatalf("count = %d, want 800", got)
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("empty context must yield nil trace")
	}
	if WithTrace(ctx, nil) != ctx {
		t.Fatal("attaching nil trace must be a no-op")
	}
	tr := New()
	if FromContext(WithTrace(ctx, tr)) != tr {
		t.Fatal("trace did not round-trip through context")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-time.Second, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{time.Millisecond, 10},
		{time.Second, 20},
	}
	for _, c := range cases {
		h.Observe(c.d)
	}
	s := h.Snapshot()
	counts := map[int]uint64{0: 3, 1: 2, 2: 1, 10: 1, 20: 1}
	for i, want := range counts {
		if s.Buckets[i] != want {
			t.Fatalf("bucket %d = %d, want %d", i, s.Buckets[i], want)
		}
	}
	if got := s.Count(); got != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", got, len(cases))
	}
	// A sample beyond the largest bound lands in overflow.
	h.Observe(2 * BucketBound(NumBuckets-1))
	if h.Snapshot().Overflow != 1 {
		t.Fatal("overflow bucket not incremented")
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
	for i := 0; i < 100; i++ {
		h.Observe(100 * time.Microsecond) // bucket 7: (64µs, 128µs]
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	if p50 <= 64*time.Microsecond || p50 > 128*time.Microsecond {
		t.Fatalf("p50 = %v, want within (64µs, 128µs]", p50)
	}
	if s.Quantile(0) != 0 {
		t.Fatal("q=0 must report 0")
	}
	if q := s.Quantile(2); q <= 64*time.Microsecond || q > 128*time.Microsecond {
		t.Fatalf("clamped q>1 = %v out of bucket range", q)
	}
	// All-overflow histograms report the largest finite bound.
	var o Histogram
	o.Observe(2 * BucketBound(NumBuckets-1))
	if q := o.Snapshot().Quantile(0.99); q != BucketBound(NumBuckets-1) {
		t.Fatalf("overflow quantile = %v, want %v", q, BucketBound(NumBuckets-1))
	}
}

func TestHistogramExpositionRoundTrip(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{time.Microsecond, 50 * time.Microsecond, time.Millisecond, time.Second, 2 * BucketBound(NumBuckets-1)} {
		h.Observe(d)
	}
	var buf bytes.Buffer
	s := h.Snapshot()
	s.WritePrometheus(&buf, "test_seconds", "a test histogram")
	text := buf.String()

	if !strings.Contains(text, "# TYPE test_seconds histogram\n") {
		t.Fatalf("missing TYPE line:\n%s", text)
	}
	// Bucket samples must be cumulative and end with +Inf == _count.
	var last uint64
	var infSeen bool
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "test_seconds_bucket{") {
			continue
		}
		var n uint64
		if _, err := fmtSscanf(line, &n); err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		last = n
		infSeen = strings.Contains(line, `le="+Inf"`)
	}
	if !infSeen {
		t.Fatal("+Inf bucket must be the final bucket sample")
	}
	if !strings.Contains(text, "test_seconds_count 5\n") {
		t.Fatalf("missing _count:\n%s", text)
	}

	parsed, ok := ParseHistogram(text, "test_seconds")
	if !ok {
		t.Fatal("ParseHistogram found nothing")
	}
	if parsed.Count() != s.Count() || parsed.Overflow != s.Overflow {
		t.Fatalf("round-trip mismatch: parsed %+v, want %+v", parsed, s)
	}
	if parsed.Buckets != s.Buckets {
		t.Fatalf("bucket mismatch: parsed %v, want %v", parsed.Buckets, s.Buckets)
	}
	if d := parsed.Sum - s.Sum; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("sum mismatch: parsed %v, want %v", parsed.Sum, s.Sum)
	}
	if _, ok := ParseHistogram(text, "absent_seconds"); ok {
		t.Fatal("ParseHistogram invented samples for an absent metric")
	}
}

// fmtSscanf extracts the trailing integer from a sample line.
func fmtSscanf(line string, n *uint64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	var err error
	*n, err = parseUint(line[i+1:])
	return 1, err
}

func parseUint(s string) (uint64, error) {
	var n uint64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errNotDigit
		}
		n = n*10 + uint64(c-'0')
	}
	return n, nil
}

var errNotDigit = errorString("not a digit")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestReadRuntime(t *testing.T) {
	rs := ReadRuntime()
	if rs.Goroutines < 1 {
		t.Fatalf("goroutines = %d", rs.Goroutines)
	}
	if rs.HeapBytes == 0 {
		t.Fatal("heap bytes = 0")
	}
}

func TestReadBuild(t *testing.T) {
	bi := ReadBuild()
	if bi.GoVersion == "" {
		t.Fatal("empty go version")
	}
	if bi.Revision == "" {
		t.Fatal("empty revision (want a hash or \"unknown\")")
	}
	if again := ReadBuild(); again != bi {
		t.Fatal("ReadBuild not stable across calls")
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	for _, c := range []struct{ level, format string }{
		{"debug", "text"}, {"info", "json"}, {"warn", "text"}, {"error", "json"}, {"", ""},
	} {
		if _, err := NewLogger(&buf, c.level, c.format); err != nil {
			t.Fatalf("NewLogger(%q, %q): %v", c.level, c.format, err)
		}
	}
	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Fatal("bad format accepted")
	}

	buf.Reset()
	log, _ := NewLogger(&buf, "info", "json")
	log.Debug("hidden")
	log.Info("shown", "k", "v")
	var entry map[string]any
	if err := json.Unmarshal(buf.Bytes(), &entry); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	if entry["msg"] != "shown" || entry["k"] != "v" {
		t.Fatalf("unexpected log entry: %v", entry)
	}
}

func TestLogRequests(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		AnnotateJob(r, "job-42")
		if _, ok := w.(http.Flusher); !ok {
			t.Error("wrapped writer must keep Flusher for SSE")
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte("ok"))
		w.(http.Flusher).Flush()
	})
	h := LogRequests(log, inner)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/audits", nil))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status = %d", rec.Code)
	}
	var entry map[string]any
	if err := json.Unmarshal(buf.Bytes(), &entry); err != nil {
		t.Fatalf("access log is not JSON: %v\n%s", err, buf.String())
	}
	if entry["method"] != "POST" || entry["path"] != "/v1/audits" ||
		entry["status"] != float64(http.StatusAccepted) || entry["job"] != "job-42" {
		t.Fatalf("access log entry = %v", entry)
	}
	if entry["level"] != "INFO" {
		t.Fatalf("level = %v, want INFO", entry["level"])
	}

	// Scrape endpoints log at debug; implicit 200 via Write.
	buf.Reset()
	plain := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok")) })
	LogRequests(log, plain).ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/metrics", nil))
	entry = map[string]any{}
	if err := json.Unmarshal(buf.Bytes(), &entry); err != nil {
		t.Fatalf("access log is not JSON: %v", err)
	}
	if entry["level"] != "DEBUG" || entry["status"] != float64(200) {
		t.Fatalf("scrape log entry = %v", entry)
	}

	// Handlers that never write still log an implicit 200.
	buf.Reset()
	LogRequests(log, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {})).
		ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	entry = map[string]any{}
	json.Unmarshal(buf.Bytes(), &entry)
	if entry["status"] != float64(200) {
		t.Fatalf("implicit status = %v", entry["status"])
	}

	// nil logger: middleware is the identity.
	if got := LogRequests(nil, inner); got == nil {
		t.Fatal("nil logger must pass handler through")
	}

	// AnnotateJob outside the middleware is a safe no-op.
	AnnotateJob(httptest.NewRequest("GET", "/x", nil), "id")
}
