package faultinject

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func openTemp(t *testing.T, fs *FS) *File {
	t.Helper()
	f, err := fs.OpenFile(filepath.Join(t.TempDir(), "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestFailNthWrite(t *testing.T) {
	fs := &FS{}
	fs.FailWrites(2, 1, syscall.ENOSPC)
	f := openTemp(t, fs)

	if _, err := f.WriteAt([]byte("one"), 0); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := f.WriteAt([]byte("two"), 3); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write 2: err = %v, want ENOSPC", err)
	}
	if _, err := f.WriteAt([]byte("three"), 3); err != nil {
		t.Fatalf("write 3: %v", err)
	}
	if got := fs.Writes(); got != 3 {
		t.Fatalf("writes = %d, want 3", got)
	}
}

func TestUnboundedWindowAndReset(t *testing.T) {
	fs := &FS{}
	fs.FailWrites(1, 0, nil) // every write fails until Reset
	f := openTemp(t, fs)
	for i := 0; i < 3; i++ {
		if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrInjected) {
			t.Fatalf("write %d: err = %v, want ErrInjected", i+1, err)
		}
	}
	fs.Reset()
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("post-reset write: %v", err)
	}
}

func TestShortWritePersistsHalf(t *testing.T) {
	fs := &FS{}
	fs.ShortWrite(1)
	f := openTemp(t, fs)
	n, err := f.WriteAt([]byte("abcdefgh"), 0)
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err = %v, want ErrShortWrite", err)
	}
	if n != 4 {
		t.Fatalf("n = %d, want 4", n)
	}
	buf := make([]byte, 8)
	if rn, _ := f.ReadAt(buf, 0); rn != 4 || string(buf[:rn]) != "abcd" {
		t.Fatalf("file holds %q (%d bytes), want half the buffer", buf[:rn], rn)
	}
}

func TestCorruptWriteSilentlySucceeds(t *testing.T) {
	fs := &FS{}
	fs.CorruptWrite(1)
	f := openTemp(t, fs)
	if _, err := f.WriteAt([]byte{0x00, 0x11}, 0); err != nil {
		t.Fatalf("corrupt write reported failure: %v", err)
	}
	buf := make([]byte, 2)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if buf[0] == 0x00 || buf[1] != 0x11 {
		t.Fatalf("file holds %x, want first byte flipped only", buf)
	}
}

func TestFailSync(t *testing.T) {
	fs := &FS{}
	fs.FailSyncs(1, 1, nil)
	f := openTemp(t, fs)
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 1: err = %v, want ErrInjected", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 2: %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	sp, err := ParseSpec("delay=250ms, enospc=2:3")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Delay != 250*time.Millisecond {
		t.Fatalf("delay = %v", sp.Delay)
	}
	if sp.FS == nil {
		t.Fatal("spec with enospc clause has no FS")
	}
	f := openTemp(t, sp.FS)
	f.WriteAt([]byte("x"), 0)
	for i := 0; i < 3; i++ {
		if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("write %d: err = %v, want ENOSPC", i+2, err)
		}
	}
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("write 5: %v", err)
	}

	if sp, err := ParseSpec(""); err != nil || sp.FS != nil || sp.Delay != 0 {
		t.Fatalf("empty spec = %+v, %v", sp, err)
	}
	for _, bad := range []string{"nope=1", "delay=xyz", "enospc=0", "enospc=1:0", "corrupt=-2", "enospc"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestHookDelayHonorsContext(t *testing.T) {
	sp := &Spec{Delay: time.Hour}
	hook := sp.Hook()
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	if err := hook(ctx, "k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	sp = &Spec{Delay: time.Millisecond}
	if err := sp.Hook()(context.Background(), "k"); err != nil {
		t.Fatal(err)
	}
	if (&Spec{}).Hook() != nil {
		t.Fatal("zero spec returned a hook")
	}
}
