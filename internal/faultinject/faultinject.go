// Package faultinject provides deterministic fault injection for the
// durability stack: a filesystem seam that fails, shortens, or silently
// corrupts the Nth write (or sync) issued through it, plus a run-closure
// hook that injects latency into auditd's job executor. Both are driven
// either programmatically from tests or from the `indaas serve -chaos`
// flag via ParseSpec, so the same faults power unit tests and the
// scripts/smoke.sh chaos leg.
//
// The package deliberately does not import internal/store: the store's
// own tests inject faults through store.Options.OpenFile, and Go's
// structural typing lets *File satisfy the store's File interface without
// a dependency edge in either direction.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// ErrInjected is the default error returned by failing rules that do not
// specify their own.
var ErrInjected = errors.New("faultinject: injected error")

// Op selects which file operation a Rule applies to.
type Op uint8

const (
	// OpWrite matches WriteAt calls.
	OpWrite Op = iota
	// OpSync matches Sync calls.
	OpSync
)

// Rule describes one injected fault. Operations are counted 1-based
// across every file opened through the owning FS, so "the Nth write"
// means the Nth write the store issues overall — deterministic for a
// single-threaded caller like the store's append path.
type Rule struct {
	Op    Op
	From  int64 // first op ordinal affected; <=0 means 1
	Count int64 // number of ops affected; <=0 means every op from From on
	Err   error // error to return; nil picks a default per fault shape

	// Short makes a write persist only half its buffer before failing —
	// the torn-append shape recovery must truncate.
	Short bool
	// Corrupt flips one bit of the buffer and reports success — silent
	// media corruption that only checksums can catch.
	Corrupt bool
}

// FS hands out fault-injecting files and counts the operations that flow
// through them. The zero value is ready to use and injects nothing.
type FS struct {
	mu     sync.Mutex
	writes int64
	syncs  int64
	rules  []Rule
}

// Add installs a rule. Rules are checked in insertion order; the first
// match wins.
func (fs *FS) Add(r Rule) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.rules = append(fs.rules, r)
}

// FailWrites fails writes from..from+count-1 (1-based; count<=0 means
// forever) with err, or ErrInjected when err is nil.
func (fs *FS) FailWrites(from, count int64, err error) {
	fs.Add(Rule{Op: OpWrite, From: from, Count: count, Err: err})
}

// ShortWrite makes the nth write persist only half its buffer and return
// io.ErrShortWrite.
func (fs *FS) ShortWrite(n int64) {
	fs.Add(Rule{Op: OpWrite, From: n, Count: 1, Short: true})
}

// CorruptWrite makes the nth write flip a bit and report success.
func (fs *FS) CorruptWrite(n int64) {
	fs.Add(Rule{Op: OpWrite, From: n, Count: 1, Corrupt: true})
}

// FailSyncs fails syncs from..from+count-1 (1-based; count<=0 means
// forever) with err, or ErrInjected when err is nil.
func (fs *FS) FailSyncs(from, count int64, err error) {
	fs.Add(Rule{Op: OpSync, From: from, Count: count, Err: err})
}

// Reset drops every rule; the operation counters keep running.
func (fs *FS) Reset() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.rules = nil
}

// Writes reports how many writes have flowed through the FS so far.
func (fs *FS) Writes() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.writes
}

// OpenFile opens name like os.OpenFile but returns a fault-injecting
// handle. It matches the signature of store.Options.OpenFile up to the
// concrete return type.
func (fs *FS) OpenFile(name string, flag int, perm os.FileMode) (*File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &File{fs: fs, f: f}, nil
}

func (fs *FS) match(op Op) (Rule, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var n int64
	switch op {
	case OpWrite:
		fs.writes++
		n = fs.writes
	case OpSync:
		fs.syncs++
		n = fs.syncs
	}
	for _, r := range fs.rules {
		if r.Op != op {
			continue
		}
		from := r.From
		if from <= 0 {
			from = 1
		}
		if n < from {
			continue
		}
		if r.Count > 0 && n >= from+r.Count {
			continue
		}
		return r, true
	}
	return Rule{}, false
}

// File is an os.File wrapper that consults its FS before every write and
// sync. It satisfies internal/store's File interface structurally.
type File struct {
	fs *FS
	f  *os.File
}

func (f *File) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }
func (f *File) Truncate(size int64) error               { return f.f.Truncate(size) }
func (f *File) Stat() (os.FileInfo, error)              { return f.f.Stat() }
func (f *File) Close() error                            { return f.f.Close() }

func (f *File) WriteAt(p []byte, off int64) (int, error) {
	r, ok := f.fs.match(OpWrite)
	if !ok {
		return f.f.WriteAt(p, off)
	}
	switch {
	case r.Corrupt:
		q := make([]byte, len(p))
		copy(q, p)
		if len(q) > 0 {
			q[0] ^= 0x40
		}
		return f.f.WriteAt(q, off)
	case r.Short:
		n, _ := f.f.WriteAt(p[:len(p)/2], off)
		err := r.Err
		if err == nil {
			err = io.ErrShortWrite
		}
		return n, err
	default:
		err := r.Err
		if err == nil {
			err = ErrInjected
		}
		return 0, err
	}
}

func (f *File) Sync() error {
	r, ok := f.fs.match(OpSync)
	if !ok {
		return f.f.Sync()
	}
	if r.Err != nil {
		return r.Err
	}
	return ErrInjected
}

// Spec is a parsed -chaos flag: filesystem faults for the store plus
// latency for the job executor.
type Spec struct {
	// FS is non-nil when the spec includes filesystem faults; wire it into
	// store.Options.OpenFile.
	FS *FS
	// Delay is injected before every computation via Hook.
	Delay time.Duration
}

// ParseSpec parses a comma-separated chaos specification:
//
//	delay=DUR         sleep DUR before every computation
//	enospc=N[:K]      writes N..N+K-1 fail with ENOSPC (K defaults to 1)
//	failwrite=N[:K]   writes N..N+K-1 fail with a generic injected error
//	shortwrite=N      write N persists half its buffer and fails
//	corrupt=N         write N flips a bit and reports success
//	syncfail=N[:K]    syncs N..N+K-1 fail
//
// An empty spec yields an empty *Spec (no faults).
func ParseSpec(spec string) (*Spec, error) {
	sp := &Spec{}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, arg, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: clause %q: want name=value", clause)
		}
		switch name {
		case "delay":
			d, err := time.ParseDuration(arg)
			if err != nil {
				return nil, fmt.Errorf("faultinject: delay %q: %v", arg, err)
			}
			sp.Delay = d
		case "enospc", "failwrite", "syncfail":
			from, count, err := parseWindow(arg)
			if err != nil {
				return nil, fmt.Errorf("faultinject: %s %q: %v", name, arg, err)
			}
			switch name {
			case "enospc":
				sp.fs().FailWrites(from, count, syscall.ENOSPC)
			case "failwrite":
				sp.fs().FailWrites(from, count, nil)
			case "syncfail":
				sp.fs().FailSyncs(from, count, nil)
			}
		case "shortwrite", "corrupt":
			n, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("faultinject: %s %q: want positive integer", name, arg)
			}
			if name == "shortwrite" {
				sp.fs().ShortWrite(n)
			} else {
				sp.fs().CorruptWrite(n)
			}
		default:
			return nil, fmt.Errorf("faultinject: unknown clause %q", name)
		}
	}
	return sp, nil
}

func (sp *Spec) fs() *FS {
	if sp.FS == nil {
		sp.FS = &FS{}
	}
	return sp.FS
}

// parseWindow parses "N" or "N:K" into a 1-based (from, count) window.
func parseWindow(arg string) (from, count int64, err error) {
	fromStr, countStr, ok := strings.Cut(arg, ":")
	from, err = strconv.ParseInt(fromStr, 10, 64)
	if err != nil || from < 1 {
		return 0, 0, errors.New("want N or N:K with positive N")
	}
	count = 1
	if ok {
		count, err = strconv.ParseInt(countStr, 10, 64)
		if err != nil || count < 1 {
			return 0, 0, errors.New("want N or N:K with positive K")
		}
	}
	return from, count, nil
}

// Hook returns a run-closure hook injecting the spec's latency, or nil
// when the spec carries none. The sleep honors ctx so canceled jobs do
// not pin workers.
func (sp *Spec) Hook() func(ctx context.Context, key string) error {
	if sp == nil || sp.Delay <= 0 {
		return nil
	}
	d := sp.Delay
	return func(ctx context.Context, key string) error {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
