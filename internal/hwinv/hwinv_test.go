package hwinv

import (
	"reflect"
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate("S1", 42)
	b := Generate("S1", 42)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different machines")
	}
	if len(a.Components) != len(componentTypes) {
		t.Errorf("machine has %d components, want %d", len(a.Components), len(componentTypes))
	}
	for i, c := range a.Components {
		if c.Type != componentTypes[i] {
			t.Errorf("component %d type = %s, want %s", i, c.Type, componentTypes[i])
		}
		found := false
		for _, m := range Catalog[c.Type] {
			if m == c.Model {
				found = true
			}
		}
		if !found {
			t.Errorf("component %v not from catalog", c)
		}
	}
}

func TestGenerateFleet(t *testing.T) {
	fleet := GenerateFleet("S", 4, 7)
	if len(fleet) != 4 {
		t.Fatalf("fleet size %d", len(fleet))
	}
	if fleet[0].Name != "S1" || fleet[3].Name != "S4" {
		t.Errorf("fleet names: %s..%s", fleet[0].Name, fleet[3].Name)
	}
	again := GenerateFleet("S", 4, 7)
	if !reflect.DeepEqual(fleet, again) {
		t.Error("fleet generation not deterministic")
	}
}

func TestCollectQualified(t *testing.T) {
	m := Machine{Name: "S1", Components: []Component{
		{Type: "CPU", Model: "Intel(R)X5550@2.6GHz"},
		{Type: "Disk", Model: "SED900"},
	}}
	recs := Collect(m, true)
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	// The paper's Fig. 3 convention: dep="S1-SED900".
	if recs[1].Hardware.Dep != "S1-SED900" {
		t.Errorf("qualified dep = %q, want S1-SED900", recs[1].Hardware.Dep)
	}
	if recs[0].Hardware.HW != "S1" || recs[0].Hardware.Type != "CPU" {
		t.Errorf("record header = %+v", recs[0].Hardware)
	}
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			t.Errorf("invalid record: %v", err)
		}
	}
}

func TestCollectBatchMode(t *testing.T) {
	m1 := Machine{Name: "S1", Components: []Component{{Type: "Disk", Model: "SED900"}}}
	m2 := Machine{Name: "S2", Components: []Component{{Type: "Disk", Model: "SED900"}}}
	recs := CollectFleet([]Machine{m1, m2}, false)
	if recs[0].Hardware.Dep != recs[1].Hardware.Dep {
		t.Error("batch mode should expose the shared model as one component")
	}
	qualified := CollectFleet([]Machine{m1, m2}, true)
	if qualified[0].Hardware.Dep == qualified[1].Hardware.Dep {
		t.Error("qualified mode should keep per-machine components distinct")
	}
}

func TestSharedModels(t *testing.T) {
	fleet := []Machine{
		{Name: "A", Components: []Component{{Type: "Disk", Model: "SED900"}}},
		{Name: "B", Components: []Component{{Type: "Disk", Model: "SED900"}}},
		{Name: "C", Components: []Component{{Type: "Disk", Model: "ST2000DM001"}}},
	}
	shared := SharedModels(fleet)
	if got := shared["SED900"]; !reflect.DeepEqual(got, []string{"A", "B"}) {
		t.Errorf("SED900 users = %v", got)
	}
	if got := shared["ST2000DM001"]; len(got) != 1 {
		t.Errorf("ST2000DM001 users = %v", got)
	}
}

func TestCaseStudyInventoryShape(t *testing.T) {
	// The Fig. 3 sample: S1's CPU record should render in Table 1 format.
	m := Machine{Name: "S1", Components: []Component{{Type: "CPU", Model: "Intel(R)X5550@2.6GHz"}}}
	rec := Collect(m, true)[0]
	if !strings.Contains(rec.String(), `dep="S1-Intel(R)X5550@2.6GHz"`) {
		t.Errorf("record = %s", rec)
	}
}
