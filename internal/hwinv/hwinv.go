// Package hwinv simulates hardware inventory acquisition — the paper's lshw
// (HardwareLister) dependency acquisition module (§3, [61]).
//
// A Machine carries the physical components lshw would report (CPU, disk,
// RAM, NIC, RAID controller); Collect walks the inventory and emits Table 1
// hardware dependency records. Following the paper's Fig. 3, component model
// identifiers are qualified with the machine name ("S1-SED900") by default,
// so that identical models in different machines stay distinct components;
// batch mode drops the qualifier to expose shared hardware batches
// (same-model correlated failures) for ablation studies.
package hwinv

import (
	"fmt"
	"math/rand"

	"indaas/internal/deps"
)

// Component is one physical part of a machine.
type Component struct {
	Type  string // CPU, Disk, RAM, NIC, RAID
	Model string // catalog model identifier
}

// Machine is a host with its hardware inventory.
type Machine struct {
	Name       string
	Components []Component
}

// Catalog lists the component models the generator draws from, loosely
// modelled on mid-2010s server hardware like the paper's testbed.
var Catalog = map[string][]string{
	"CPU":  {"Intel(R)X5550@2.6GHz", "Intel(R)E5-2650@2.0GHz", "AMD-Opteron6272@2.1GHz"},
	"Disk": {"SED900", "ST2000DM001", "WD2003FYYS", "Intel-SSD-DC3500"},
	"RAM":  {"DDR3-1333-ECC-8GB", "DDR3-1600-ECC-16GB"},
	"NIC":  {"Intel-82599ES-10GbE", "BCM5709-1GbE"},
	"RAID": {"LSI-MegaRAID-9260", "HP-SmartArray-P410"},
}

// componentTypes is the deterministic walk order of the inventory.
var componentTypes = []string{"CPU", "Disk", "RAM", "NIC", "RAID"}

// Generate creates a machine with a pseudo-random but seed-deterministic
// inventory drawn from the catalog.
func Generate(name string, seed int64) Machine {
	rng := rand.New(rand.NewSource(seed))
	m := Machine{Name: name}
	for _, typ := range componentTypes {
		models := Catalog[typ]
		m.Components = append(m.Components, Component{Type: typ, Model: models[rng.Intn(len(models))]})
	}
	return m
}

// GenerateFleet creates n machines named <prefix>1..<prefix>n with
// inventories derived deterministically from seed.
func GenerateFleet(prefix string, n int, seed int64) []Machine {
	out := make([]Machine, n)
	for i := range out {
		out[i] = Generate(fmt.Sprintf("%s%d", prefix, i+1), seed+int64(i)*7919)
	}
	return out
}

// Collect walks a machine's inventory and emits Table 1 hardware records.
// With qualified=true (the paper's Fig. 3 convention) model identifiers are
// prefixed "name-", keeping per-machine components distinct; with
// qualified=false the raw model identifier is used, so machines sharing a
// hardware batch share components.
func Collect(m Machine, qualified bool) []deps.Record {
	out := make([]deps.Record, 0, len(m.Components))
	for _, c := range m.Components {
		dep := c.Model
		if qualified {
			dep = m.Name + "-" + c.Model
		}
		out = append(out, deps.NewHardware(m.Name, c.Type, dep))
	}
	return out
}

// CollectFleet collects every machine in the fleet.
func CollectFleet(ms []Machine, qualified bool) []deps.Record {
	var out []deps.Record
	for _, m := range ms {
		out = append(out, Collect(m, qualified)...)
	}
	return out
}

// SharedModels returns, per component model, the machines using it —
// the shared-batch view auditors use to find same-model correlated risks
// (e.g. a bad disk firmware batch).
func SharedModels(ms []Machine) map[string][]string {
	out := make(map[string][]string)
	for _, m := range ms {
		for _, c := range m.Components {
			out[c.Model] = append(out[c.Model], m.Name)
		}
	}
	return out
}
