package sia

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"indaas/internal/depdb"
	"indaas/internal/deps"
	"indaas/internal/faultgraph"
)

// storageDB models the Fig. 2 / Fig. 3 sample distributed storage system:
// S1 and S2 behind a shared ToR1 with redundant cores, per-server hardware,
// and software with a shared libc6.
func storageDB(t *testing.T) *depdb.DB {
	t.Helper()
	db := depdb.New()
	err := db.Put(
		deps.NewNetwork("S1", "Internet", "ToR1", "Core1"),
		deps.NewNetwork("S1", "Internet", "ToR1", "Core2"),
		deps.NewNetwork("S2", "Internet", "ToR1", "Core1"),
		deps.NewNetwork("S2", "Internet", "ToR1", "Core2"),
		deps.NewHardware("S1", "CPU", "S1-Intel(R)X5550@2.6GHz"),
		deps.NewHardware("S1", "Disk", "S1-SED900"),
		deps.NewHardware("S2", "CPU", "S2-Intel(R)X5550@2.6GHz"),
		deps.NewHardware("S2", "Disk", "S2-SED900"),
		deps.NewSoftware("QueryEngine1", "S1", "libc6", "libgcc1"),
		deps.NewSoftware("Riak1", "S1", "libc6", "libsvn1"),
		deps.NewSoftware("QueryEngine2", "S2", "libc6", "libgcc1"),
		deps.NewSoftware("Riak2", "S2", "libc6", "libsvn1"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBuildGraphStructure(t *testing.T) {
	db := storageDB(t)
	g, err := BuildGraph(db, GraphSpec{Deployment: "storage", Servers: []string{"S1", "S2"}})
	if err != nil {
		t.Fatal(err)
	}
	top := g.Node(g.Top())
	if top.Gate != faultgraph.AND || len(top.Children) != 2 {
		t.Fatalf("top gate %v with %d children", top.Gate, len(top.Children))
	}
	// Shared components must be shared basic events.
	for _, shared := range []string{"ToR1", "Core1", "Core2", "libc6"} {
		if _, ok := g.Lookup(shared); !ok {
			t.Errorf("shared component %q missing", shared)
		}
	}
	// Per-server hardware stays distinct.
	if _, ok := g.Lookup("S1-SED900"); !ok {
		t.Error("S1 disk missing")
	}
	// The single shared ToR fails the whole deployment.
	if !g.EvaluateSet([]string{"ToR1"}) {
		t.Error("ToR1 failure should fail the deployment")
	}
	// One core alone does not (paths are redundant).
	if g.EvaluateSet([]string{"Core1"}) {
		t.Error("one core should not fail the deployment")
	}
	if !g.EvaluateSet([]string{"Core1", "Core2"}) {
		t.Error("both cores should fail the deployment")
	}
	// Shared libc6 fails both servers' software.
	if !g.EvaluateSet([]string{"libc6"}) {
		t.Error("libc6 failure should fail the deployment")
	}
	// Per-server disks must both fail to take the deployment down.
	if g.EvaluateSet([]string{"S1-SED900"}) {
		t.Error("one disk should not fail the deployment")
	}
	if !g.EvaluateSet([]string{"S1-SED900", "S2-SED900"}) {
		t.Error("both disks should fail the deployment")
	}
}

func TestBuildGraphKindFilter(t *testing.T) {
	db := storageDB(t)
	g, err := BuildGraph(db, GraphSpec{
		Deployment: "netonly",
		Servers:    []string{"S1", "S2"},
		Kinds:      []deps.Kind{deps.KindNetwork},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Lookup("libc6"); ok {
		t.Error("software component present despite network-only filter")
	}
	if _, ok := g.Lookup("S1-SED900"); ok {
		t.Error("hardware component present despite network-only filter")
	}
	if _, ok := g.Lookup("ToR1"); !ok {
		t.Error("network component missing")
	}
}

func TestBuildGraphNofM(t *testing.T) {
	db := depdb.New()
	for _, s := range []string{"A", "B", "C"} {
		if err := db.Put(deps.NewHardware(s, "Disk", s+"-disk")); err != nil {
			t.Fatal(err)
		}
	}
	// 2-of-3 deployment: fails once 2 servers fail.
	g, err := BuildGraph(db, GraphSpec{Deployment: "kv", Servers: []string{"A", "B", "C"}, Needed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.EvaluateSet([]string{"A-disk"}) {
		t.Error("one server down should not fail 2-of-3")
	}
	if !g.EvaluateSet([]string{"A-disk", "C-disk"}) {
		t.Error("two servers down should fail 2-of-3")
	}
}

func TestBuildGraphProbabilities(t *testing.T) {
	db := storageDB(t)
	g, err := BuildGraph(db, GraphSpec{
		Deployment: "weighted",
		Servers:    []string{"S1", "S2"},
		Kinds:      []deps.Kind{deps.KindNetwork},
		Prob:       func(string) float64 { return 0.1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range g.BasicEvents() {
		if g.Node(id).Prob != 0.1 {
			t.Errorf("event %q prob = %v", g.Node(id).Label, g.Node(id).Prob)
		}
	}
}

func TestBuildGraphErrors(t *testing.T) {
	db := storageDB(t)
	if _, err := BuildGraph(db, GraphSpec{Deployment: "x"}); err == nil {
		t.Error("no servers accepted")
	}
	if _, err := BuildGraph(db, GraphSpec{Deployment: "x", Servers: []string{"ghost"}}); err == nil {
		t.Error("unknown server accepted")
	}
	if _, err := BuildGraph(db, GraphSpec{Deployment: "x", Servers: []string{"S1"}, Needed: 5}); err == nil {
		t.Error("Needed > servers accepted")
	}
	// Kind filter that removes every dependency of a server.
	db2 := depdb.New()
	if err := db2.Put(deps.NewHardware("H", "CPU", "m")); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildGraph(db2, GraphSpec{
		Deployment: "x", Servers: []string{"H"}, Kinds: []deps.Kind{deps.KindNetwork},
	}); err == nil {
		t.Error("server with no matching dependency kinds accepted")
	}
}

func TestAuditMinimalRGSizeRank(t *testing.T) {
	db := storageDB(t)
	spec := GraphSpec{Deployment: "storage", Servers: []string{"S1", "S2"}}
	g, err := BuildGraph(db, spec)
	if err != nil {
		t.Fatal(err)
	}
	audit, err := Audit(g, spec, Options{Algorithm: MinimalRG, RankMode: RankBySize})
	if err != nil {
		t.Fatal(err)
	}
	if audit.Deployment != "storage" || audit.Expected != 2 {
		t.Errorf("audit header: %+v", audit)
	}
	// Unexpected (size-1) RGs: the shared ToR1 plus every package shared by
	// programs running on both servers — libc6, libgcc1 (both QueryEngines)
	// and libsvn1 (both Riaks).
	if audit.Unexpected != 4 {
		t.Errorf("unexpected RGs = %d, want 4", audit.Unexpected)
	}
	if len(audit.RGs) < 4 || audit.RGs[3].Size != 1 {
		t.Fatalf("first RGs: %+v", audit.RGs)
	}
	var singles []string
	for _, rg := range audit.RGs[:4] {
		singles = append(singles, strings.Join(rg.Components, ","))
	}
	if !reflect.DeepEqual(singles, []string{"ToR1", "libc6", "libgcc1", "libsvn1"}) {
		t.Errorf("size-1 RGs = %v", singles)
	}
	if !math.IsNaN(audit.FailureProb) {
		t.Error("unweighted audit should have NaN failure probability")
	}
	if audit.Algorithm != "minimal-rg" {
		t.Errorf("algorithm = %q", audit.Algorithm)
	}
}

func TestAuditSamplingMatchesMinimal(t *testing.T) {
	db := storageDB(t)
	spec := GraphSpec{Deployment: "storage", Servers: []string{"S1", "S2"}}
	g, err := BuildGraph(db, spec)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Audit(g, spec, Options{Algorithm: MinimalRG, RankMode: RankBySize})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Audit(g, spec, Options{Algorithm: FailureSampling, Rounds: 5000, Seed: 3, RankMode: RankBySize})
	if err != nil {
		t.Fatal(err)
	}
	// On this small graph sampling with shrink finds the full family.
	if !reflect.DeepEqual(exact.SizeVector(), sampled.SizeVector()) {
		t.Errorf("size vectors differ: exact %v, sampled %v", exact.SizeVector(), sampled.SizeVector())
	}
}

func TestAuditProbabilityRanking(t *testing.T) {
	db := storageDB(t)
	spec := GraphSpec{
		Deployment: "weighted",
		Servers:    []string{"S1", "S2"},
		Kinds:      []deps.Kind{deps.KindNetwork},
		Prob:       func(string) float64 { return 0.1 },
	}
	g, err := BuildGraph(db, spec)
	if err != nil {
		t.Fatal(err)
	}
	audit, err := Audit(g, spec, Options{Algorithm: MinimalRG, RankMode: RankByProb})
	if err != nil {
		t.Fatal(err)
	}
	// Minimal RGs: {ToR1} (p=0.1) and {Core1,Core2} (p=0.01).
	// Pr(T) = 0.1 + 0.01 − 0.001 = 0.109.
	if math.Abs(audit.FailureProb-0.109) > 1e-12 {
		t.Errorf("Pr(T) = %v, want 0.109", audit.FailureProb)
	}
	if audit.RGs[0].Components[0] != "ToR1" {
		t.Errorf("top RG = %v, want ToR1", audit.RGs[0].Components)
	}
	if math.Abs(audit.RGs[0].Importance-0.1/0.109) > 1e-9 {
		t.Errorf("I(ToR1) = %v", audit.RGs[0].Importance)
	}
}

func TestAuditDeploymentsRanksAlternatives(t *testing.T) {
	// Three alternatives: shared-everything, shared-ToR, fully disjoint.
	db := depdb.New()
	err := db.Put(
		// a1, a2 behind the same single-homed ToR and core.
		deps.NewNetwork("a1", "Internet", "torA", "coreA"),
		deps.NewNetwork("a2", "Internet", "torA", "coreA"),
		// b1, b2 share only the ToR.
		deps.NewNetwork("b1", "Internet", "torB", "coreB1"),
		deps.NewNetwork("b2", "Internet", "torB", "coreB2"),
		// c1, c2 fully disjoint.
		deps.NewNetwork("c1", "Internet", "torC1", "coreC1"),
		deps.NewNetwork("c2", "Internet", "torC2", "coreC2"),
	)
	if err != nil {
		t.Fatal(err)
	}
	specs := []GraphSpec{
		{Deployment: "shared-all", Servers: []string{"a1", "a2"}},
		{Deployment: "shared-tor", Servers: []string{"b1", "b2"}},
		{Deployment: "disjoint", Servers: []string{"c1", "c2"}},
	}
	rep, err := AuditDeployments(db, "alternatives", specs, Options{Algorithm: MinimalRG, RankMode: RankBySize})
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	for _, a := range rep.Audits {
		order = append(order, a.Deployment)
	}
	want := []string{"disjoint", "shared-tor", "shared-all"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("deployment ranking = %v, want %v", order, want)
	}
	best, err := rep.Best()
	if err != nil || best.Deployment != "disjoint" {
		t.Errorf("Best = %v, %v", best, err)
	}
	if rep.Audits[0].Unexpected != 0 || rep.Audits[2].Unexpected == 0 {
		t.Error("unexpected RG counts wrong")
	}
}

func TestAuditDeploymentsEmpty(t *testing.T) {
	if _, err := AuditDeployments(depdb.New(), "t", nil, Options{}); err == nil {
		t.Error("empty spec list accepted")
	}
}

func TestAuditUnknownOptions(t *testing.T) {
	db := storageDB(t)
	spec := GraphSpec{Deployment: "x", Servers: []string{"S1"}}
	g, err := BuildGraph(db, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Audit(g, spec, Options{Algorithm: Algorithm(9)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := Audit(g, spec, Options{RankMode: RankMode(9)}); err == nil {
		t.Error("unknown rank mode accepted")
	}
}

// TestBuildGraphStableUnderReobservation: continuous acquisition keeps
// appending observations of the same dependencies to DepDB. The graph must
// neither fail (duplicate events) nor grow — re-auditing a watched
// deployment after a NIC flap cycle, a package upgrade and a netflow
// re-observation yields a graph of the same shape.
func TestBuildGraphStableUnderReobservation(t *testing.T) {
	db := storageDB(t)
	spec := GraphSpec{Deployment: "storage", Servers: []string{"S1", "S2"}}
	before, err := BuildGraph(db, spec)
	if err != nil {
		t.Fatal(err)
	}
	err = db.Put(
		deps.NewHardware("S1", "CPU", "S1-Opteron2435"),          // replaced
		deps.NewHardware("S1", "CPU", "S1-Intel(R)X5550@2.6GHz"), // and swapped back
		deps.NewSoftware("Riak1", "S1", "libc6", "libsvn1"),      // same closure again
		deps.NewNetwork("S1", "Internet", "ToR1", "Core1"),       // same route again
	)
	if err != nil {
		t.Fatal(err)
	}
	after, err := BuildGraph(db, spec)
	if err != nil {
		t.Fatalf("rebuild after re-observation: %v", err)
	}
	if after.Len() != before.Len() {
		t.Errorf("graph grew from %d to %d nodes under pure re-observation", before.Len(), after.Len())
	}
	// A real change does show: upgrading Riak1's closure swaps the package.
	if err := db.Put(deps.NewSoftware("Riak1", "S1", "libc6", "libsvn2")); err != nil {
		t.Fatal(err)
	}
	upgraded, err := BuildGraph(db, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := upgraded.Lookup("libsvn2"); !ok {
		t.Error("upgraded package missing from rebuilt graph")
	}
}
