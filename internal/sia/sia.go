// Package sia implements Structural Independence Auditing (§4.1): building
// dependency graphs from DepDB records (Steps 1–6 of §4.1.1), determining
// risk groups with the pluggable algorithms of §4.1.2, ranking them
// (§4.1.3) and producing auditing reports with independence scores (§4.1.4).
package sia

import (
	"context"
	"fmt"
	"indaas/internal/telemetry"
	"math"
	"time"

	"indaas/internal/depdb"
	"indaas/internal/deps"
	"indaas/internal/faultgraph"
	"indaas/internal/ranking"
	"indaas/internal/report"
	"indaas/internal/riskgroup"
)

// GraphSpec describes one redundancy deployment to build a fault graph for
// (the §2 Step 1 client specification, restricted to one deployment).
type GraphSpec struct {
	// Deployment names the configuration; the top event is
	// "<Deployment> fails".
	Deployment string
	// Servers are the redundant data sources (§4.1.1 Step 2).
	Servers []string
	// Needed is the n of an n-of-m deployment: the service survives while
	// any Needed servers are up. 0 means all servers are needed to be
	// considered before failure, i.e. plain m-way redundancy (the top event
	// fires only when every server fails).
	Needed int
	// Kinds selects which dependency kinds to include; empty means all.
	Kinds []deps.Kind
	// Prob optionally assigns failure probabilities to components by
	// normalized name; return faultgraph.ProbUnknown to leave a component
	// unweighted.
	Prob func(component string) float64
}

func (s *GraphSpec) wantKind(k deps.Kind) bool {
	if len(s.Kinds) == 0 {
		return true
	}
	for _, kk := range s.Kinds {
		if kk == k {
			return true
		}
	}
	return false
}

// BuildGraph constructs the deployment's fault graph from DepDB following
// §4.1.1 Steps 1–6:
//
//  1. the top event is the failure of the whole deployment;
//  2. each server's failure is a child of the top event, joined by an AND
//     gate (K-of-N for n-of-m deployments);
//  3. each server fails when its network, hardware or software fails (OR);
//  4. hardware dependencies join the hardware event through an OR gate;
//  5. redundant network routes join through an AND gate, the devices on
//     each route through an OR gate;
//  6. software components join through OR gates, each component an OR over
//     its packages.
func BuildGraph(db depdb.Reader, spec GraphSpec) (*faultgraph.Graph, error) {
	if len(spec.Servers) == 0 {
		return nil, fmt.Errorf("sia: deployment %q has no servers", spec.Deployment)
	}
	if spec.Needed < 0 || spec.Needed > len(spec.Servers) {
		return nil, fmt.Errorf("sia: Needed=%d out of range 0..%d", spec.Needed, len(spec.Servers))
	}
	name := spec.Deployment
	if name == "" {
		name = "deployment"
	}
	b := faultgraph.NewBuilder()
	basic := func(label string) faultgraph.NodeID {
		if spec.Prob != nil {
			return b.BasicProb(label, spec.Prob(label))
		}
		return b.Basic(label)
	}

	var serverNodes []faultgraph.NodeID
	for _, srv := range spec.Servers {
		records := db.QueryAll(srv)
		if len(records) == 0 {
			return nil, fmt.Errorf("sia: no dependency records for server %q", srv)
		}
		var children []faultgraph.NodeID

		// Step 5: network failure = AND over redundant routes, each route
		// an OR over its devices.
		if spec.wantKind(deps.KindNetwork) {
			var routeNodes []faultgraph.NodeID
			for ri, net := range db.Networks(srv) {
				if len(net.Route) == 0 {
					continue
				}
				var devs []faultgraph.NodeID
				for _, d := range net.Route {
					devs = append(devs, basic(d))
				}
				label := fmt.Sprintf("%s route#%d->%s", srv, ri+1, net.Dst)
				routeNodes = append(routeNodes, b.Gate(label, faultgraph.OR, devs...))
			}
			if len(routeNodes) > 0 {
				children = append(children, b.Gate(srv+" network fails", faultgraph.AND, routeNodes...))
			}
		}

		// Step 4: hardware failure = OR over component failures.
		if spec.wantKind(deps.KindHardware) {
			var hwNodes []faultgraph.NodeID
			for _, hw := range db.HardwareOf(srv) {
				hwNodes = append(hwNodes, basic(hw.Dep))
			}
			if len(hwNodes) > 0 {
				children = append(children, b.Gate(srv+" hardware fails", faultgraph.OR, hwNodes...))
			}
		}

		// Step 6: software failure = OR over components; each component an
		// OR over its packages (a package-less program is a basic event).
		if spec.wantKind(deps.KindSoftware) {
			var swNodes []faultgraph.NodeID
			for _, sw := range db.SoftwareOf(srv) {
				if len(sw.Dep) == 0 {
					swNodes = append(swNodes, basic(sw.Pgm))
					continue
				}
				var pkgNodes []faultgraph.NodeID
				for _, p := range sw.Dep {
					pkgNodes = append(pkgNodes, basic(p))
				}
				// Qualify by server like every other gate: the same
				// program running on two redundant servers is distinct
				// failure events (different hosts, same package set).
				swNodes = append(swNodes, b.Gate(srv+" "+sw.Pgm+" fails", faultgraph.OR, pkgNodes...))
			}
			if len(swNodes) > 0 {
				children = append(children, b.Gate(srv+" software fails", faultgraph.OR, swNodes...))
			}
		}

		if len(children) == 0 {
			return nil, fmt.Errorf("sia: server %q has no dependencies of the requested kinds", srv)
		}
		serverNodes = append(serverNodes, b.Gate(srv+" fails", faultgraph.OR, children...))
	}

	// Steps 1–2: top event over the redundant servers.
	var top faultgraph.NodeID
	if spec.Needed == 0 || spec.Needed == len(spec.Servers) {
		top = b.Gate(name+" fails", faultgraph.AND, serverNodes...)
	} else {
		// n-of-m: the deployment fails once m−n+1 servers fail.
		top = b.GateK(name+" fails", len(spec.Servers)-spec.Needed+1, serverNodes...)
	}
	b.SetTop(top)
	return b.Build()
}

// Algorithm selects the RG determination algorithm (§4.1.2).
type Algorithm int

const (
	// MinimalRG is the exact, NP-hard cut-set algorithm.
	MinimalRG Algorithm = iota
	// FailureSampling is the linear-time Monte-Carlo algorithm.
	FailureSampling
)

// String names the algorithm for reports.
func (a Algorithm) String() string {
	switch a {
	case MinimalRG:
		return "minimal-rg"
	case FailureSampling:
		return "failure-sampling"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// RankMode selects the RG ranking algorithm (§4.1.3).
type RankMode int

const (
	// RankBySize uses size-based ranking.
	RankBySize RankMode = iota
	// RankByProb uses failure probability ranking (requires weights).
	RankByProb
)

// Options tunes an audit run.
type Options struct {
	Algorithm Algorithm
	// Rounds is the sampling round count for FailureSampling (default 10⁵).
	Rounds int
	// Seed seeds the sampler (default 1).
	Seed int64
	// Workers is the sampler's parallelism: 0 means one goroutine per CPU,
	// 1 forces the sequential path (see riskgroup.Sampler.Workers).
	Workers int
	// RankMode picks the ranking algorithm.
	RankMode RankMode
	// ScoreTopN is the n of the §4.1.4 independence score (default: all).
	ScoreTopN int
	// MaxSets / MaxSize bound the minimal RG algorithm (see riskgroup).
	MaxSets int
	MaxSize int
}

// Audit runs the SIA pipeline on a built fault graph: determine RGs, rank,
// score, and assemble the deployment's audit record.
func Audit(g *faultgraph.Graph, spec GraphSpec, opts Options) (*report.DeploymentAudit, error) {
	return AuditContext(context.Background(), g, spec, opts)
}

// AuditContext is Audit under a context: cancellation and deadlines reach
// the RG determination loops (riskgroup.MinimalRGsContext and the parallel
// Sampler workers), so a runaway enumeration aborts promptly with ctx.Err()
// and no partial audit escapes.
func AuditContext(ctx context.Context, g *faultgraph.Graph, spec GraphSpec, opts Options) (*report.DeploymentAudit, error) {
	start := time.Now()
	var fam []riskgroup.RG
	var err error
	switch opts.Algorithm {
	case MinimalRG:
		fam, err = riskgroup.MinimalRGsContext(ctx, g, riskgroup.MinimalOptions{MaxSets: opts.MaxSets, MaxSize: opts.MaxSize})
	case FailureSampling:
		rounds := opts.Rounds
		if rounds == 0 {
			rounds = 100_000
		}
		fam, err = riskgroup.Sampler{Rounds: rounds, Shrink: true, Seed: opts.Seed, Workers: opts.Workers}.SampleContext(ctx, g)
	default:
		return nil, fmt.Errorf("sia: unknown algorithm %v", opts.Algorithm)
	}
	if err != nil {
		return nil, err
	}

	var ranked []ranking.Ranked
	topProb := math.NaN()
	switch opts.RankMode {
	case RankBySize:
		ranked = ranking.BySize(g, fam)
	case RankByProb:
		var p float64
		ranked, p, err = ranking.ByProb(g, fam)
		if err != nil {
			return nil, err
		}
		topProb = p
	default:
		return nil, fmt.Errorf("sia: unknown rank mode %v", opts.RankMode)
	}

	expected := len(spec.Servers)
	if spec.Needed > 0 {
		expected = len(spec.Servers) - spec.Needed + 1
	}
	audit := &report.DeploymentAudit{
		Deployment:  spec.Deployment,
		Sources:     append([]string(nil), spec.Servers...),
		Expected:    expected,
		FailureProb: topProb,
		Algorithm:   opts.Algorithm.String(),
	}
	for _, r := range ranked {
		audit.RGs = append(audit.RGs, report.RGEntry{
			Components: r.Labels,
			Size:       r.Size,
			Prob:       r.Prob,
			Importance: r.Importance,
		})
		if r.Size < expected {
			audit.Unexpected++
		}
	}
	topN := opts.ScoreTopN
	if topN <= 0 {
		topN = len(ranked)
	}
	mode := ranking.ScoreSize
	if opts.RankMode == RankByProb {
		mode = ranking.ScoreImportance
	}
	audit.Score = ranking.Score(ranked, topN, mode)
	audit.ScoreTopN = topN
	audit.Elapsed = time.Since(start)
	return audit, nil
}

// AuditDeployments builds and audits each alternative deployment and
// returns a ranked report (CompareByFailureProb when probabilities are
// available, CompareBySizeVector otherwise).
func AuditDeployments(db depdb.Reader, title string, specs []GraphSpec, opts Options) (*report.Report, error) {
	return AuditDeploymentsContext(context.Background(), db, title, specs, opts)
}

// AuditDeploymentsContext is AuditDeployments under a context; see
// AuditContext for the cancellation semantics. db is any depdb.Reader — the
// audit service passes an immutable depdb.Snapshot so jobs never contend
// with writers.
func AuditDeploymentsContext(ctx context.Context, db depdb.Reader, title string, specs []GraphSpec, opts Options) (*report.Report, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("sia: no deployments to audit")
	}
	tr := telemetry.FromContext(ctx)
	rep := &report.Report{Title: title}
	for _, spec := range specs {
		endBuild := tr.Start("graph-build")
		g, err := BuildGraph(db, spec)
		endBuild()
		if err != nil {
			return nil, err
		}
		audit, err := AuditContext(ctx, g, spec, opts)
		if err != nil {
			return nil, fmt.Errorf("sia: auditing %q: %w", spec.Deployment, err)
		}
		rep.Audits = append(rep.Audits, *audit)
	}
	if opts.RankMode == RankByProb {
		rep.Rank(report.CompareByFailureProb)
	} else {
		rep.Rank(report.CompareBySizeVector)
	}
	return rep, nil
}
