package sia

import (
	"reflect"
	"testing"

	"indaas/internal/depdb"
	"indaas/internal/deps"
)

// TestDirtyDeployments pins the record→cone mapping: a diffed record dirties
// exactly the deployments that include its subject and want its kind.
func TestDirtyDeployments(t *testing.T) {
	db := depdb.New()
	put := func(records ...deps.Record) {
		t.Helper()
		if err := db.Put(records...); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range []string{"s1", "s2", "s3"} {
		put(
			deps.NewNetwork(s, "Internet", "tor-"+s),
			deps.NewHardware(s, "Disk", s+"-disk"),
		)
	}
	before := db.Snapshot()
	put(deps.NewHardware("s2", "NIC", "s2-nic")) // hardware change on s2 only
	after := db.Snapshot()
	d := before.Diff(after)

	specs := []GraphSpec{
		{Deployment: "a", Servers: []string{"s1", "s3"}},                                        // untouched
		{Deployment: "b", Servers: []string{"s1", "s2"}},                                        // contains s2
		{Deployment: "c", Servers: []string{"s2"}, Kinds: []deps.Kind{deps.KindNetwork}},        // s2, but network-only
		{Deployment: "d", Servers: []string{"s2", "s3"}, Kinds: []deps.Kind{deps.KindHardware}}, // s2, hardware wanted
	}
	dirty, subjects := DirtyDeployments(specs, d)
	want := []bool{false, true, false, true}
	if !reflect.DeepEqual(dirty, want) {
		t.Fatalf("dirty = %v, want %v", dirty, want)
	}
	if !reflect.DeepEqual(subjects, []string{"s2"}) {
		t.Fatalf("subjects = %v, want [s2]", subjects)
	}

	// An empty diff dirties nothing.
	if dirty, subjects := DirtyDeployments(specs, after.Diff(after)); dirty[1] || len(subjects) != 0 {
		t.Fatalf("empty diff dirtied something: %v %v", dirty, subjects)
	}
}

// TestDirtySubjects covers the kind-filtered subject set used by the
// placement delta path.
func TestDirtySubjects(t *testing.T) {
	a, b := depdb.New(), depdb.New()
	base := []deps.Record{
		deps.NewNetwork("n1", "Internet", "tor1"),
		deps.NewHardware("n2", "Disk", "old"),
	}
	if err := a.Put(base...); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(base[0], deps.NewHardware("n2", "Disk", "new"), deps.NewSoftware("etcd", "n3", "libc6")); err != nil {
		t.Fatal(err)
	}
	d := a.Snapshot().Diff(b.Snapshot())
	if got := DirtySubjects(d, nil); !reflect.DeepEqual(got, []string{"n2", "n3"}) {
		t.Fatalf("all kinds: %v", got)
	}
	if got := DirtySubjects(d, []deps.Kind{deps.KindSoftware}); !reflect.DeepEqual(got, []string{"n3"}) {
		t.Fatalf("software only: %v", got)
	}
	if got := DirtySubjects(d, []deps.Kind{deps.KindNetwork}); len(got) != 0 {
		t.Fatalf("network only: %v", got)
	}
}
