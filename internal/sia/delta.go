package sia

import (
	"sort"

	"indaas/internal/depdb"
	"indaas/internal/deps"
)

// This file maps DepDB changes onto the audit subjects they can affect — the
// analysis delta audits are built on. BuildGraph reads exactly the records
// of a deployment's servers, restricted to the spec's kinds (§4.1.1 Steps
// 2–6), so a diffed record reaches a deployment's fault-graph cone iff its
// subject is one of the deployment's servers and its kind is one the spec
// wants. A deployment none of whose servers are touched builds a
// byte-identical fault graph against either snapshot, and therefore audits
// identically.

// DirtySubjects returns the sorted subjects whose dependency records of a
// wanted kind differ between the two snapshots the diff compares. kinds nil
// or empty means all kinds — the convention GraphSpec.Kinds uses.
func DirtySubjects(d depdb.Diff, kinds []deps.Kind) []string {
	want := func(k deps.Kind) bool {
		if len(kinds) == 0 {
			return true
		}
		for _, kk := range kinds {
			if kk == k {
				return true
			}
		}
		return false
	}
	set := make(map[string]bool)
	for _, r := range d.Touched() {
		if want(r.Kind) {
			set[r.Subject()] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// DirtyDeployments reports, for each spec, whether its fault graph can
// differ between two snapshots related by diff — true iff some diffed record
// of a kind the spec wants is about one of the spec's servers. subjects is
// the sorted union of the servers that dirtied at least one spec; a spec
// with dirty[i] == false is guaranteed to audit identically against either
// snapshot.
func DirtyDeployments(specs []GraphSpec, d depdb.Diff) (dirty []bool, subjects []string) {
	touched := d.Touched()
	dirty = make([]bool, len(specs))
	subjSet := make(map[string]bool)
	for i := range specs {
		spec := &specs[i]
		servers := make(map[string]bool, len(spec.Servers))
		for _, srv := range spec.Servers {
			servers[srv] = true
		}
		for _, r := range touched {
			if spec.wantKind(r.Kind) && servers[r.Subject()] {
				dirty[i] = true
				subjSet[r.Subject()] = true
			}
		}
	}
	subjects = make([]string, 0, len(subjSet))
	for s := range subjSet {
		subjects = append(subjects, s)
	}
	sort.Strings(subjects)
	return dirty, subjects
}
