// Command depgen generates dependency datasets in the Table 1 XML format:
// data-center topologies (fat trees, the Benson-style DC), hardware
// inventories, and software package closures. Useful for feeding
// "indaas audit" and "indaas source" without a live infrastructure.
//
// Usage:
//
//	depgen -kind fattree -k 8 > deps.xml
//	depgen -kind benson > benson.xml
//	depgen -kind hardware -servers 8 -seed 7 > hw.xml
//	depgen -kind software > sw.xml
//	depgen -kind cloudlab > lab.xml
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"indaas/internal/cloudsim"
	"indaas/internal/core"
	"indaas/internal/deps"
	"indaas/internal/hwinv"
	"indaas/internal/swpkg"
	"indaas/internal/topology"
)

func main() {
	kind := flag.String("kind", "", "dataset: fattree, benson, hardware, software, cloudlab")
	k := flag.Int("k", 8, "fat-tree arity (fattree)")
	servers := flag.Int("servers", 4, "number of servers (hardware, fattree subset)")
	seed := flag.Int64("seed", 1, "generator seed (hardware)")
	flag.Parse()

	records, err := generate(*kind, *k, *servers, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "depgen: %v\n", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if err := deps.EncodeXML(w, records); err != nil {
		fmt.Fprintf(os.Stderr, "depgen: %v\n", err)
		os.Exit(1)
	}
}

func generate(kind string, k, servers int, seed int64) ([]deps.Record, error) {
	switch kind {
	case "fattree":
		ft, err := topology.FatTree(k)
		if err != nil {
			return nil, err
		}
		subjects := ft.Servers()
		if servers > 0 && servers < len(subjects) {
			subjects = subjects[:servers]
		}
		return core.TopologyAcquirer(ft).Collect(subjects)
	case "benson":
		dc := topology.BensonDC()
		return core.TopologyAcquirer(dc).Collect(topology.BensonCandidateRacks())
	case "hardware":
		fleet := hwinv.GenerateFleet("S", servers, seed)
		return hwinv.CollectFleet(fleet, true), nil
	case "software":
		u, roots := swpkg.KeyValueStoreUniverse()
		var out []deps.Record
		for i, root := range roots {
			rec, err := u.Record(root, fmt.Sprintf("S%d", i+1), root)
			if err != nil {
				return nil, err
			}
			out = append(out, rec)
		}
		return out, nil
	case "cloudlab":
		cloud := cloudsim.FourServerLab(seed)
		if _, err := cloud.PlaceOn("VM7", "Server2"); err != nil {
			return nil, err
		}
		if _, err := cloud.PlaceOn("VM8", "Server2"); err != nil {
			return nil, err
		}
		return core.CloudAcquirer(cloud, []string{"VM7", "VM8"}).Collect(nil)
	case "":
		return nil, fmt.Errorf("missing -kind (fattree, benson, hardware, software, cloudlab)")
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}
