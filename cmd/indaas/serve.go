package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"indaas/internal/auditd"
	"indaas/internal/cluster"
	"indaas/internal/depdb"
	"indaas/internal/faultinject"
	"indaas/internal/store"
	"indaas/internal/telemetry"
)

// cmdServe runs the always-on audit service (§5 as a daemon): an HTTP/JSON
// API over a bounded worker pool with a content-addressed result cache.
// With -data-dir the service is durable: completed results and ingested
// DepDB snapshots are written through to a crash-safe disk store, and a
// restarted daemon serves them again without recomputation.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7080", "listen address")
	depsPath := fs.String("deps", "", "Table 1 XML file to preload (optional; requests may inline records)")
	workers := fs.Int("workers", 0, "worker pool size (0 = one per CPU)")
	queue := fs.Int("queue", 0, "max queued computations (0 = default 128)")
	cacheEntries := fs.Int("cache", 0, "result cache entries (0 = default 512, negative disables)")
	timeout := fs.Duration("timeout", 0, "default per-job timeout (0 = none)")
	grace := fs.Duration("grace", 10*time.Second, "shutdown grace period for in-flight jobs")
	dataDir := fs.String("data-dir", "", "persistent store directory (empty = memory-only service)")
	storeMaxBytes := fs.Int64("store-max-bytes", 0, "persisted result budget in bytes (0 = default 256 MiB, negative = unlimited)")
	storeMaxAge := fs.Duration("store-max-age", 0, "evict persisted results older than this (0 = keep forever)")
	storeGCInterval := fs.Duration("store-gc-interval", 5*time.Minute, "background store GC period enforcing -store-max-age/-store-max-bytes on an idle daemon (0 disables)")
	storeFailThreshold := fs.Int("store-failure-threshold", 0, "consecutive store write failures before degrading to memory-only serving (0 = default 3)")
	storeRetryInterval := fs.Duration("store-retry-interval", 0, "how often a degraded daemon probes the store to restore durable mode (0 = default 15s)")
	chaosSpec := fs.String("chaos", "", "fault injection spec for resilience testing, e.g. 'delay=3s,enospc=2:2' (see internal/faultinject)")
	ingestRate := fs.Float64("ingest-rate", 0, "admission cap on /v1/depdb in records/second; excess ingests get 429 + Retry-After (0 = unlimited)")
	ingestBurst := fs.Float64("ingest-burst", 0, "ingest token bucket depth in records (0 = one second of -ingest-rate)")
	watchBuffer := fs.Int("watch-buffer", 0, "per-subscriber watch event queue; overflowing subscribers are evicted (0 = default 16)")
	peersFlag := fs.String("peers", "", "comma-separated peer addresses to form a cluster with (e.g. 'http://10.0.0.2:7080,http://10.0.0.3:7080'; empty = single node)")
	advertise := fs.String("advertise", "", "address peers reach this node at (default: the -listen address)")
	clusterPoll := fs.Duration("cluster-poll", 2*time.Second, "peer health poll interval when -peers is set")
	logLevel := fs.String("log-level", "info", "log verbosity: debug, info, warn, error (debug includes /metrics and /healthz scrapes)")
	logFormat := fs.String("log-format", "text", "log output format: text or json")
	debugAddr := fs.String("debug-addr", "", "listen address for the pprof debug server (empty = disabled); serves /debug/pprof/ only, keep it private")
	if err := fs.Parse(args); err != nil {
		return err
	}
	log, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	chaos, err := faultinject.ParseSpec(*chaosSpec)
	if err != nil {
		return err
	}
	if *chaosSpec != "" {
		log.Warn("CHAOS MODE: injecting faults", "spec", *chaosSpec)
	}
	var db *depdb.DB
	if *depsPath != "" {
		var err error
		if db, err = loadDepsXML(*depsPath); err != nil {
			return err
		}
	}
	var st *store.Store
	if *dataDir != "" {
		opts := store.Options{Dir: *dataDir, MaxBytes: *storeMaxBytes, MaxAge: *storeMaxAge}
		if chaos.FS != nil {
			opts.OpenFile = func(name string, flag int, perm os.FileMode) (store.File, error) {
				return chaos.FS.OpenFile(name, flag, perm)
			}
		}
		var err error
		st, err = store.Open(opts)
		if err != nil {
			return err
		}
		defer st.Close()
		if rec := st.Recovery(); rec.TruncatedBytes > 0 {
			log.Warn("store recovery dropped a torn tail",
				"truncated_bytes", rec.TruncatedBytes, "entries_intact", rec.Entries)
		}
		if rec := st.Recovery(); rec.QuarantinedBytes > 0 {
			log.Warn("store recovery quarantined corrupt bytes; intact entries kept",
				"quarantined_bytes", rec.QuarantinedBytes, "ranges", rec.QuarantinedRanges)
		}
		restored, err := auditd.RestoreDB(st)
		if err != nil {
			return fmt.Errorf("restoring persisted DepDB snapshot: %w", err)
		}
		if restored != nil {
			// The persisted snapshot holds every record the daemon served
			// when it last ingested — a superset of any -deps preload from
			// that era — so it wins over the preload to keep fingerprints
			// stable across restarts.
			if db != nil {
				log.Info("persisted DepDB snapshot supersedes -deps preload", "records", restored.Len())
			}
			db = restored
		}
	}
	cfg := auditd.Config{
		Workers:               *workers,
		QueueDepth:            *queue,
		CacheEntries:          *cacheEntries,
		DB:                    db,
		DefaultTimeout:        *timeout,
		Store:                 st,
		StoreFailureThreshold: *storeFailThreshold,
		StoreRetryInterval:    *storeRetryInterval,
		RunHook:               chaos.Hook(),
		IngestRate:            *ingestRate,
		IngestBurst:           *ingestBurst,
		WatchBuffer:           *watchBuffer,
	}
	// With -peers, hang the cluster layer off the service's seams: the
	// executor wrapper routes workloads to their hash owners, the peer tier
	// probes the owner's cache behind memory and disk, the replication hook
	// pushes ingests fleet-wide, and the cluster series join /metrics.
	var node *cluster.Node
	if *peersFlag != "" {
		self := *advertise
		if self == "" {
			self = *listen
		}
		var peers []string
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		node = cluster.New(cluster.Config{Self: self, Peers: peers, PollInterval: *clusterPoll})
		cfg.WrapExecutor = node.WrapExecutor
		cfg.ExtraTiers = []auditd.ResultTier{node.PeerTier()}
		cfg.ReplicateHook = node.Replicate
		cfg.ExtraMetrics = node.RenderMetrics
		log.Info("clustering enabled", "self", self, "peers", len(peers))
	}
	svc := auditd.New(cfg)
	if node != nil {
		node.Start()
		defer node.Stop()
	}
	// Without the ticker, size/age eviction only runs inside store writes,
	// so an idle daemon would never enforce -store-max-age.
	stopGC := svc.StartStoreGC(*storeGCInterval)
	defer stopGC()
	// Re-enqueue journaled jobs that a previous process accepted but never
	// finished — before the listener opens, so a client polling a recovered
	// job id never sees "unknown job" from the new process.
	if st != nil {
		if n, err := svc.RecoverJobs(); err != nil {
			return fmt.Errorf("recovering journaled jobs: %w", err)
		} else if n > 0 {
			log.Info("re-enqueued journaled job(s) from a previous run", "jobs", n)
		}
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler: telemetry.LogRequests(log, svc.Handler()),
		// Slow-loris protection. No WriteTimeout: status long-polls hold the
		// response open for up to a minute by design.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	// The pprof server binds its own (private) address rather than the API
	// one: profiling endpoints expose heap contents and must never be
	// reachable wherever the audit API is.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv := &http.Server{Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		defer debugSrv.Close()
		go debugSrv.Serve(dln)
		log.Info("pprof debug server listening", "addr", dln.Addr().String())
	}
	fields := []any{"addr", "http://" + ln.Addr().String()}
	if db != nil {
		fields = append(fields, "preloaded_records", db.Len())
	}
	if st != nil {
		fields = append(fields, "durable", true, "stored_entries", st.Len())
	}
	log.Info("indaas audit service listening", fields...)
	// Keep the plain stdout line: scripts (and humans) grep for it.
	fmt.Printf("indaas audit service on http://%s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case <-sig:
	}
	log.Info("shutting down; draining in-flight jobs", "grace", grace.String())
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	httpSrv.Shutdown(ctx)
	return svc.Shutdown(ctx)
}
