package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"indaas/internal/auditd"
	"indaas/internal/depdb"
	"indaas/internal/faultinject"
	"indaas/internal/store"
)

// cmdServe runs the always-on audit service (§5 as a daemon): an HTTP/JSON
// API over a bounded worker pool with a content-addressed result cache.
// With -data-dir the service is durable: completed results and ingested
// DepDB snapshots are written through to a crash-safe disk store, and a
// restarted daemon serves them again without recomputation.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7080", "listen address")
	depsPath := fs.String("deps", "", "Table 1 XML file to preload (optional; requests may inline records)")
	workers := fs.Int("workers", 0, "worker pool size (0 = one per CPU)")
	queue := fs.Int("queue", 0, "max queued computations (0 = default 128)")
	cacheEntries := fs.Int("cache", 0, "result cache entries (0 = default 512, negative disables)")
	timeout := fs.Duration("timeout", 0, "default per-job timeout (0 = none)")
	grace := fs.Duration("grace", 10*time.Second, "shutdown grace period for in-flight jobs")
	dataDir := fs.String("data-dir", "", "persistent store directory (empty = memory-only service)")
	storeMaxBytes := fs.Int64("store-max-bytes", 0, "persisted result budget in bytes (0 = default 256 MiB, negative = unlimited)")
	storeMaxAge := fs.Duration("store-max-age", 0, "evict persisted results older than this (0 = keep forever)")
	storeGCInterval := fs.Duration("store-gc-interval", 5*time.Minute, "background store GC period enforcing -store-max-age/-store-max-bytes on an idle daemon (0 disables)")
	storeFailThreshold := fs.Int("store-failure-threshold", 0, "consecutive store write failures before degrading to memory-only serving (0 = default 3)")
	storeRetryInterval := fs.Duration("store-retry-interval", 0, "how often a degraded daemon probes the store to restore durable mode (0 = default 15s)")
	chaosSpec := fs.String("chaos", "", "fault injection spec for resilience testing, e.g. 'delay=3s,enospc=2:2' (see internal/faultinject)")
	ingestRate := fs.Float64("ingest-rate", 0, "admission cap on /v1/depdb in records/second; excess ingests get 429 + Retry-After (0 = unlimited)")
	ingestBurst := fs.Float64("ingest-burst", 0, "ingest token bucket depth in records (0 = one second of -ingest-rate)")
	watchBuffer := fs.Int("watch-buffer", 0, "per-subscriber watch event queue; overflowing subscribers are evicted (0 = default 16)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	chaos, err := faultinject.ParseSpec(*chaosSpec)
	if err != nil {
		return err
	}
	if *chaosSpec != "" {
		fmt.Printf("indaas: CHAOS MODE: injecting faults (%s)\n", *chaosSpec)
	}
	var db *depdb.DB
	if *depsPath != "" {
		var err error
		if db, err = loadDepsXML(*depsPath); err != nil {
			return err
		}
	}
	var st *store.Store
	if *dataDir != "" {
		opts := store.Options{Dir: *dataDir, MaxBytes: *storeMaxBytes, MaxAge: *storeMaxAge}
		if chaos.FS != nil {
			opts.OpenFile = func(name string, flag int, perm os.FileMode) (store.File, error) {
				return chaos.FS.OpenFile(name, flag, perm)
			}
		}
		var err error
		st, err = store.Open(opts)
		if err != nil {
			return err
		}
		defer st.Close()
		if rec := st.Recovery(); rec.TruncatedBytes > 0 {
			fmt.Printf("indaas: store recovery dropped a torn tail of %d bytes (%d entries intact)\n",
				rec.TruncatedBytes, rec.Entries)
		}
		if rec := st.Recovery(); rec.QuarantinedBytes > 0 {
			fmt.Printf("indaas: store recovery quarantined %d corrupt bytes in %d range(s); intact entries kept\n",
				rec.QuarantinedBytes, rec.QuarantinedRanges)
		}
		restored, err := auditd.RestoreDB(st)
		if err != nil {
			return fmt.Errorf("restoring persisted DepDB snapshot: %w", err)
		}
		if restored != nil {
			// The persisted snapshot holds every record the daemon served
			// when it last ingested — a superset of any -deps preload from
			// that era — so it wins over the preload to keep fingerprints
			// stable across restarts.
			if db != nil {
				fmt.Printf("indaas: persisted DepDB snapshot (%d records) supersedes -deps preload\n", restored.Len())
			}
			db = restored
		}
	}
	svc := auditd.New(auditd.Config{
		Workers:               *workers,
		QueueDepth:            *queue,
		CacheEntries:          *cacheEntries,
		DB:                    db,
		DefaultTimeout:        *timeout,
		Store:                 st,
		StoreFailureThreshold: *storeFailThreshold,
		StoreRetryInterval:    *storeRetryInterval,
		RunHook:               chaos.Hook(),
		IngestRate:            *ingestRate,
		IngestBurst:           *ingestBurst,
		WatchBuffer:           *watchBuffer,
	})
	// Without the ticker, size/age eviction only runs inside store writes,
	// so an idle daemon would never enforce -store-max-age.
	stopGC := svc.StartStoreGC(*storeGCInterval)
	defer stopGC()
	// Re-enqueue journaled jobs that a previous process accepted but never
	// finished — before the listener opens, so a client polling a recovered
	// job id never sees "unknown job" from the new process.
	if st != nil {
		if n, err := svc.RecoverJobs(); err != nil {
			return fmt.Errorf("recovering journaled jobs: %w", err)
		} else if n > 0 {
			fmt.Printf("indaas: re-enqueued %d journaled job(s) from a previous run\n", n)
		}
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler: svc.Handler(),
		// Slow-loris protection. No WriteTimeout: status long-polls hold the
		// response open for up to a minute by design.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	detail := ""
	if db != nil {
		detail = fmt.Sprintf(" (%d preloaded records)", db.Len())
	}
	if st != nil {
		detail += fmt.Sprintf(" [durable: %d stored entries]", st.Len())
	}
	fmt.Printf("indaas audit service on http://%s%s\n", ln.Addr(), detail)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case <-sig:
	}
	fmt.Println("indaas: shutting down; draining in-flight jobs")
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	httpSrv.Shutdown(ctx)
	return svc.Shutdown(ctx)
}
