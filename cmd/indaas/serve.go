package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"indaas/internal/auditd"
	"indaas/internal/depdb"
)

// cmdServe runs the always-on audit service (§5 as a daemon): an HTTP/JSON
// API over a bounded worker pool with a content-addressed result cache.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7080", "listen address")
	depsPath := fs.String("deps", "", "Table 1 XML file to preload (optional; requests may inline records)")
	workers := fs.Int("workers", 0, "worker pool size (0 = one per CPU)")
	queue := fs.Int("queue", 0, "max queued computations (0 = default 128)")
	cacheEntries := fs.Int("cache", 0, "result cache entries (0 = default 512, negative disables)")
	timeout := fs.Duration("timeout", 0, "default per-job timeout (0 = none)")
	grace := fs.Duration("grace", 10*time.Second, "shutdown grace period for in-flight jobs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var db *depdb.DB
	if *depsPath != "" {
		var err error
		if db, err = loadDepsXML(*depsPath); err != nil {
			return err
		}
	}
	svc := auditd.New(auditd.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheEntries,
		DB:             db,
		DefaultTimeout: *timeout,
	})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	if db != nil {
		fmt.Printf("indaas audit service on http://%s (%d preloaded records)\n", ln.Addr(), db.Len())
	} else {
		fmt.Printf("indaas audit service on http://%s\n", ln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case <-sig:
	}
	fmt.Println("indaas: shutting down; draining in-flight jobs")
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	httpSrv.Shutdown(ctx)
	return svc.Shutdown(ctx)
}
