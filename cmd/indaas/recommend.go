package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"indaas/internal/auditd"
	"indaas/internal/placement"
)

// cmdRecommend searches the deployment space for the most independent
// replica placements — locally over a Table 1 XML file, or remotely through
// a running audit service's /v1/recommend endpoint.
func cmdRecommend(args []string) error {
	fs := flag.NewFlagSet("recommend", flag.ExitOnError)
	depsPath := fs.String("deps", "", "Table 1 XML file with dependency records (required unless -server)")
	server := fs.String("server", "", "audit service base URL (e.g. http://127.0.0.1:7080); empty = search locally")
	nodes := fs.String("nodes", "", "comma-separated candidate nodes (default: every subject in the records)")
	fixed := fs.String("fixed", "", "comma-separated nodes pinned into every deployment")
	replicas := fs.Int("replicas", 2, "deployment size, pinned nodes included")
	topK := fs.Int("top", placement.DefaultTopK, "ranked deployments to return")
	strategy := fs.String("strategy", "auto", "auto, exact, greedy or beam")
	beamWidth := fs.Int("beam", 0, "beam width (0 = default)")
	algo := fs.String("algorithm", "minimal-rg", "minimal-rg or failure-sampling, per candidate audit")
	rounds := fs.Int("rounds", 100000, "sampling rounds for failure-sampling")
	prob := fs.Float64("prob", 0, "uniform component failure probability (>0 ranks by Pr(outage))")
	kinds := fs.String("kinds", "", "comma-separated dependency kinds (network,hardware,software)")
	workers := fs.Int("workers", 0, "concurrent candidate audits (0 = one per CPU)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	splitList := func(s string) []string {
		if s == "" {
			return nil
		}
		return strings.Split(s, ",")
	}
	// One wire request serves both modes: remotely it is POSTed verbatim;
	// locally its PlacementRequest conversion applies the exact defaults
	// the service would, so offline and served rankings cannot drift.
	req := &auditd.RecommendRequest{
		Title:       "indaas recommend",
		Nodes:       splitList(*nodes),
		Fixed:       splitList(*fixed),
		Replicas:    *replicas,
		TopK:        *topK,
		Strategy:    *strategy,
		BeamWidth:   *beamWidth,
		Kinds:       splitList(*kinds),
		Algorithm:   *algo,
		Rounds:      *rounds,
		FailureProb: *prob,
		Workers:     *workers,
	}
	if *server != "" {
		return recommendRemote(*server, req, *depsPath)
	}

	if *depsPath == "" {
		return fmt.Errorf("recommend requires -deps (or -server)")
	}
	db, err := loadDepsXML(*depsPath)
	if err != nil {
		return err
	}
	preq, err := req.PlacementRequest()
	if err != nil {
		return err
	}
	preq.Nodes = req.Nodes
	if len(preq.Nodes) == 0 {
		pinned := map[string]bool{}
		for _, f := range req.Fixed {
			pinned[f] = true
		}
		for _, subj := range db.Subjects() {
			if !pinned[subj] {
				preq.Nodes = append(preq.Nodes, subj)
			}
		}
	}
	res, err := placement.Search(context.Background(), db, preq)
	if err != nil {
		return err
	}
	return renderRecommendation(auditd.RecommendResponseFromResult(res))
}

// recommendRemote submits the search to a running audit service, long-polls
// it to completion and renders the ranking. When depsPath is set, the
// records are ingested through /v1/depdb first.
func recommendRemote(base string, req *auditd.RecommendRequest, depsPath string) error {
	ctx := context.Background()
	c := auditd.NewClient(base, nil)
	if depsPath != "" {
		db, err := loadDepsXML(depsPath)
		if err != nil {
			return err
		}
		resp, err := c.Ingest(ctx, auditd.WireRecords(db.Records()))
		if err != nil {
			return err
		}
		fmt.Printf("ingested %d records (db fingerprint %.12s…)\n", resp.Added, resp.Fingerprint)
	}
	st, err := c.Recommend(ctx, req)
	if err != nil {
		return err
	}
	fmt.Printf("job %s (%s, cache key %.12s…)\n", st.ID, st.State, st.CacheKey)
	end, err := c.WaitDone(ctx, st.ID)
	if err != nil {
		return err
	}
	if end.State != auditd.StateDone {
		return fmt.Errorf("job %s ended %s: %s", end.ID, end.State, end.Error)
	}
	res, err := c.RecommendResult(ctx, st.ID)
	if err != nil {
		return err
	}
	return renderRecommendation(res)
}

// renderRecommendation prints the ranking table. Evaluated counts every
// candidate audit run — the heuristics also audit partial deployments, so
// it is not a fraction of the full deployment space.
func renderRecommendation(res *auditd.RecommendResponse) error {
	fmt.Printf("=== INDaaS placement recommendation (%s: %d candidate audits over a %d-deployment space) ===\n",
		res.Strategy, res.Evaluated, res.TotalCandidates)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "rank\tdeployment\tRGs\tsize-1\tscore\tPr(outage)")
	for _, r := range res.Rankings {
		size1 := 0
		if len(r.SizeVector) > 0 {
			size1 = r.SizeVector[0]
		}
		probCol := "-"
		if r.FailureProb != nil {
			probCol = fmt.Sprintf("%.6f", *r.FailureProb)
		}
		fmt.Fprintf(w, "#%d\t%s\t%d\t%d\t%.4f\t%s\n",
			r.Rank, strings.Join(r.Nodes, " + "), r.RGCount, size1, r.Score, probCol)
	}
	return w.Flush()
}
