// Command indaas runs INDaaS roles from the command line.
//
// Subcommands:
//
//	indaas audit -deps deps.xml -deploy "name=srv1,srv2" [-deploy ...] [flags]
//	    Run a structural independence audit over dependency records loaded
//	    from a Table 1 XML file and print the ranked report.
//
//	indaas source -listen :7001 -deps deps.xml
//	    Serve dependency records to auditing agents (Fig. 5a data source).
//
//	indaas agent -listen :7000
//	    Run an auditing agent accepting client audit requests.
//
//	indaas client -agent host:7000 -source host:7001 -deploy "name=srv1,srv2"
//	    Submit an audit specification to an agent and print the report.
//
//	indaas proxy -listen :7002 -components components.txt
//	    Run a PIA proxy serving a provider's normalized component-set
//	    (Fig. 5b) for P-SOP rounds.
//
//	indaas psop -proxies host1:7002,host2:7002[,...]
//	    Supervise one P-SOP round across running proxies and print the
//	    Jaccard similarity.
//
//	indaas serve -listen :7080 [-deps deps.xml] [-data-dir DIR]
//	    Run the always-on audit service: an HTTP/JSON API that queues audit
//	    jobs on a bounded worker pool and deduplicates identical audits
//	    through a content-addressed result cache (see internal/auditd).
//	    -data-dir makes the service durable: results and ingested DepDB
//	    snapshots survive restarts (see internal/store).
//
//	indaas store {ls|gc|verify} -data-dir DIR
//	    Inspect, garbage-collect or checksum-verify a `serve -data-dir`
//	    persistent store while the daemon is stopped.
//
//	indaas recommend -deps deps.xml -replicas 2 [-strategy exact|greedy|beam]
//	    Search "choose r of n" deployments for the most independent replica
//	    placements (see internal/placement); -server pushes the search to a
//	    running audit service's /v1/recommend endpoint instead.
//
//	indaas private-audit -provider a=a.txt -provider b=b.txt [-server URL]
//	    Run a private independence audit (PIA, §4.2) over provider
//	    component-set files — locally, or through a running audit service's
//	    /v1/private-audits endpoint where results are cached by dataset
//	    fingerprint; -register stores datasets server-side for later
//	    reference by name.
//
//	indaas loadgen -server http://127.0.0.1:7080 -rate 10000 -duration 10s
//	    Replay a simulated agent fleet's dependency churn against a running
//	    audit service and measure sustained ingest throughput, watch
//	    notification latency, and how much re-auditing stayed incremental
//	    (see internal/agentsim).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"indaas/internal/agent"
	"indaas/internal/depdb"
	"indaas/internal/deps"
	"indaas/internal/report"
	"indaas/internal/sia"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "audit":
		err = cmdAudit(os.Args[2:])
	case "source":
		err = cmdSource(os.Args[2:])
	case "agent":
		err = cmdAgent(os.Args[2:])
	case "client":
		err = cmdClient(os.Args[2:])
	case "proxy":
		err = cmdProxy(os.Args[2:])
	case "psop":
		err = cmdPSOP(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "recommend":
		err = cmdRecommend(os.Args[2:])
	case "private-audit":
		err = cmdPrivateAudit(os.Args[2:])
	case "store":
		err = cmdStore(os.Args[2:])
	case "loadgen":
		err = cmdLoadgen(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "indaas: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "indaas: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: indaas <audit|source|agent|client|proxy|psop|serve|recommend|private-audit|store|loadgen> [flags]
run "indaas <subcommand> -h" for the subcommand's flags`)
}

// deployFlag collects repeated -deploy "name=s1,s2[,s3...]" flags.
type deployFlag []agent.DeploymentSpec

func (d *deployFlag) String() string { return fmt.Sprint(*d) }

func (d *deployFlag) Set(v string) error {
	name, servers, ok := strings.Cut(v, "=")
	if !ok || name == "" || servers == "" {
		return fmt.Errorf("want name=server1,server2[,...], got %q", v)
	}
	*d = append(*d, agent.DeploymentSpec{Name: name, Servers: strings.Split(servers, ",")})
	return nil
}

func loadDepsXML(path string) (*depdb.DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	db := depdb.New()
	if err := db.ReadXML(bufio.NewReader(f)); err != nil {
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	return db, nil
}

func cmdAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	depsPath := fs.String("deps", "", "Table 1 XML file with dependency records (required)")
	var deployments deployFlag
	fs.Var(&deployments, "deploy", "deployment to audit: name=server1,server2 (repeatable)")
	algo := fs.String("algorithm", "minimal-rg", "minimal-rg or failure-sampling")
	rounds := fs.Int("rounds", 100000, "sampling rounds for failure-sampling")
	workers := fs.Int("workers", 0, "sampling goroutines (0 = one per CPU, 1 = sequential)")
	prob := fs.Float64("prob", 0, "uniform component failure probability (>0 enables probability ranking)")
	kinds := fs.String("kinds", "", "comma-separated dependency kinds to consider (network,hardware,software)")
	maxRGs := fs.Int("max-rgs", 10, "risk groups to print per deployment")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *depsPath == "" || len(deployments) == 0 {
		return fmt.Errorf("audit requires -deps and at least one -deploy")
	}
	db, err := loadDepsXML(*depsPath)
	if err != nil {
		return err
	}
	var kindList []deps.Kind
	if *kinds != "" {
		for _, name := range strings.Split(*kinds, ",") {
			k, err := deps.KindFromString(name)
			if err != nil {
				return err
			}
			kindList = append(kindList, k)
		}
	}
	opts := sia.Options{Rounds: *rounds, Workers: *workers, RankMode: sia.RankBySize}
	switch *algo {
	case "minimal-rg":
		opts.Algorithm = sia.MinimalRG
	case "failure-sampling":
		opts.Algorithm = sia.FailureSampling
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	var probFn func(string) float64
	if *prob > 0 {
		if *prob > 1 {
			return fmt.Errorf("probability %v out of range", *prob)
		}
		p := *prob
		probFn = func(string) float64 { return p }
		opts.RankMode = sia.RankByProb
	}
	var specs []sia.GraphSpec
	for _, d := range deployments {
		specs = append(specs, sia.GraphSpec{
			Deployment: d.Name, Servers: d.Servers, Kinds: kindList, Prob: probFn,
		})
	}
	rep, err := sia.AuditDeployments(db, "indaas audit", specs, opts)
	if err != nil {
		return err
	}
	return rep.Render(os.Stdout, *maxRGs)
}

func cmdSource(args []string) error {
	fs := flag.NewFlagSet("source", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7001", "listen address")
	depsPath := fs.String("deps", "", "Table 1 XML file with dependency records (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *depsPath == "" {
		return fmt.Errorf("source requires -deps")
	}
	db, err := loadDepsXML(*depsPath)
	if err != nil {
		return err
	}
	src, err := agent.NewSource(*listen, agent.StaticAcquirer(db.Records()))
	if err != nil {
		return err
	}
	defer src.Close()
	fmt.Printf("indaas source serving %d records on %s\n", db.Len(), src.Addr())
	waitForSignal()
	return nil
}

func cmdAgent(args []string) error {
	fs := flag.NewFlagSet("agent", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7000", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ag, err := agent.NewAgent(*listen)
	if err != nil {
		return err
	}
	defer ag.Close()
	fmt.Printf("indaas auditing agent on %s\n", ag.Addr())
	waitForSignal()
	return nil
}

func cmdClient(args []string) error {
	fs := flag.NewFlagSet("client", flag.ExitOnError)
	agentAddr := fs.String("agent", "127.0.0.1:7000", "auditing agent address")
	sources := fs.String("source", "", "comma-separated data source addresses (required)")
	var deployments deployFlag
	fs.Var(&deployments, "deploy", "deployment to audit: name=server1,server2 (repeatable)")
	algo := fs.String("algorithm", "minimal-rg", "minimal-rg or failure-sampling")
	rounds := fs.Int("rounds", 100000, "sampling rounds")
	prob := fs.Float64("prob", 0, "uniform component failure probability")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sources == "" || len(deployments) == 0 {
		return fmt.Errorf("client requires -source and at least one -deploy")
	}
	cl, err := agent.NewClient(*agentAddr)
	if err != nil {
		return err
	}
	defer cl.Close()
	resp, err := cl.Audit(agent.AuditRequest{
		Title:       "indaas client audit",
		Sources:     strings.Split(*sources, ","),
		Deployments: deployments,
		Algorithm:   *algo,
		Rounds:      *rounds,
		FailureProb: *prob,
	})
	if err != nil {
		return err
	}
	fmt.Printf("=== INDaaS auditing report: %s ===\n", resp.Title)
	for i, a := range resp.Audits {
		line := fmt.Sprintf("#%d %s  score=%.4f  unexpected-RGs=%d", i+1, a.Deployment, a.Score, a.Unexpected)
		if a.FailureProb != nil {
			line += fmt.Sprintf("  Pr(outage)=%.6f", *a.FailureProb)
		}
		fmt.Println(line)
		for j, rg := range a.RGs {
			if j >= 10 {
				fmt.Printf("    … %d more RGs\n", len(a.RGs)-10)
				break
			}
			fmt.Printf("    RG%-3d {%s}\n", j+1, strings.Join(rg, ", "))
		}
	}
	return nil
}

func cmdProxy(args []string) error {
	fs := flag.NewFlagSet("proxy", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7002", "listen address")
	compPath := fs.String("components", "", "file with one normalized component per line (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compPath == "" {
		return fmt.Errorf("proxy requires -components")
	}
	f, err := os.Open(*compPath)
	if err != nil {
		return err
	}
	defer f.Close()
	var components []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" && !strings.HasPrefix(line, "#") {
			components = append(components, line)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	px, err := agent.NewProxy(*listen, components)
	if err != nil {
		return err
	}
	defer px.Close()
	fmt.Printf("indaas PIA proxy with %d components on %s\n", len(components), px.Addr())
	waitForSignal()
	return nil
}

func cmdPSOP(args []string) error {
	fs := flag.NewFlagSet("psop", flag.ExitOnError)
	proxies := fs.String("proxies", "", "comma-separated proxy addresses (required, ≥ 2)")
	bits := fs.Int("bits", 1024, "commutative key size (1024 or 2048)")
	runID := fs.String("run", "", "run identifier (default: random)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := strings.Split(*proxies, ",")
	if *proxies == "" || len(addrs) < 2 {
		return fmt.Errorf("psop requires -proxies with at least two addresses")
	}
	id := *runID
	if id == "" {
		id = fmt.Sprintf("psop-%d", os.Getpid())
	}
	inter, union, err := agent.SupervisePSOP(id, addrs, *bits)
	if err != nil {
		return err
	}
	rep := report.PIAReport{Title: "P-SOP round " + id}
	j := 0.0
	if union > 0 {
		j = float64(inter) / float64(union)
	}
	rep.Entries = append(rep.Entries, report.PIAEntry{Providers: addrs, Jaccard: j})
	fmt.Printf("|intersection| = %d, |union| = %d\n", inter, union)
	return rep.Render(os.Stdout)
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}
