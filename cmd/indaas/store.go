package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"indaas/internal/store"
)

// cmdStore inspects and maintains a `serve -data-dir` persistent store while
// the daemon is stopped (the store is single-process):
//
//	indaas store ls     -data-dir DIR   list live entries
//	indaas store verify -data-dir DIR   full checksum scan; exit 1 on damage
//	indaas store gc     -data-dir DIR   apply the eviction policy and compact
func cmdStore(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("store requires a subcommand: ls, gc or verify")
	}
	sub, rest := args[0], args[1:]
	fs := flag.NewFlagSet("store "+sub, flag.ExitOnError)
	dataDir := fs.String("data-dir", "", "persistent store directory (required)")
	maxBytes := fs.Int64("store-max-bytes", 0, "gc: persisted result budget in bytes (0 = default 256 MiB, negative = unlimited)")
	maxAge := fs.Duration("store-max-age", 0, "gc: evict persisted results older than this (0 = keep forever)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if *dataDir == "" {
		return fmt.Errorf("store %s requires -data-dir", sub)
	}

	// verify never opens the store: Open's recovery would truncate a torn
	// tail before the scan could report it.
	if sub == "verify" {
		return storeVerify(*dataDir)
	}

	st, err := store.Open(store.Options{Dir: *dataDir, MaxBytes: *maxBytes, MaxAge: *maxAge})
	if err != nil {
		return err
	}
	defer st.Close()
	if rec := st.Recovery(); rec.TruncatedBytes > 0 {
		fmt.Fprintf(os.Stderr, "indaas store: recovery dropped a torn tail of %d bytes\n", rec.TruncatedBytes)
	}

	switch sub {
	case "ls":
		return storeLs(st)
	case "gc":
		return storeGC(st)
	default:
		return fmt.Errorf("unknown store subcommand %q (want ls, gc or verify)", sub)
	}
}

func storeLs(st *store.Store) error {
	stats := st.Stats()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "KIND\tBYTES\tAGE\tKEY")
	now := time.Now()
	for _, e := range st.Entries() {
		fmt.Fprintf(w, "%s\t%d\t%s\t%s\n", e.Kind, e.Size, now.Sub(e.Time).Round(time.Second), e.Key)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("%d entries, %d live bytes (%d on disk)\n", stats.Entries, stats.LiveBytes, stats.FileBytes)
	return nil
}

func storeGC(st *store.Store) error {
	before := st.Stats()
	evicted, err := st.GC()
	if err != nil {
		return err
	}
	// GC compacts on its own only past the size threshold; an explicit gc
	// reclaims every dead byte — but never rewrites an already-clean
	// segment.
	if st.Stats().DeadBytes > 0 {
		if err := st.Compact(); err != nil {
			return err
		}
	}
	after := st.Stats()
	fmt.Printf("evicted %d entries; segment %d → %d bytes (%d live entries kept)\n",
		len(evicted), before.FileBytes, after.FileBytes, after.Entries)
	return nil
}

func storeVerify(dataDir string) error {
	v, err := store.VerifyDir(dataDir)
	if err != nil {
		return err
	}
	if !v.OK() {
		return fmt.Errorf("verification failed: %d records (%d live entries) verified over %d bytes, then %d unverifiable bytes (crash residue a recovery would truncate, or mid-file damage)",
			v.Records, v.Entries, v.Bytes, v.TornBytes)
	}
	fmt.Printf("ok: %d records, %d live entries, %d bytes verified\n", v.Records, v.Entries, v.Bytes)
	return nil
}
