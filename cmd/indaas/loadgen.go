package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"indaas/internal/agentsim"
	"indaas/internal/auditd"
	"indaas/internal/deps"
	"indaas/internal/telemetry"
)

// cmdLoadgen replays a simulated agent fleet's dependency churn against a
// running audit service: bootstrap every server's acquisition modules into
// POST /v1/depdb, then push NIC flaps, rolling software upgrades and flow
// re-observations at the target record rate while a watch probe measures
// ingest→notification latency over GET /v1/watch. The run summary proves
// (via auditd_delta_* counters) how much of the triggered re-auditing
// stayed incremental.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:7080", "audit service base URL")
	k := fs.Int("k", 8, "fat-tree arity; the fleet simulates k³/4 servers")
	seed := fs.Int64("seed", 1, "fleet and churn seed")
	rate := fs.Float64("rate", 10000, "target admitted records/second")
	duration := fs.Duration("duration", 10*time.Second, "churn duration")
	concurrency := fs.Int("concurrency", 64, "in-flight ingest pushes")
	batch := fs.Int("batch", 64, "records per push: each agent ships its observation window in one request (0 = one churn event per push)")
	flows := fs.Int("flows", 32, "bootstrap Internet flows observed per server")
	probeEvery := fs.Duration("probe-interval", 200*time.Millisecond, "watch probe period (0 disables the probe)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fleet, err := agentsim.New(agentsim.Config{K: *k, Seed: *seed, FlowsPerServer: *flows})
	if err != nil {
		return err
	}
	cl := auditd.NewClient(*server, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Bootstrap: mass acquisition, batched for throughput.
	batches, err := fleet.Bootstrap()
	if err != nil {
		return err
	}
	var boot []auditd.RecordWire
	total := 0
	flush := func() error {
		if len(boot) == 0 {
			return nil
		}
		if _, err := cl.Ingest(ctx, boot); err != nil {
			return fmt.Errorf("bootstrap ingest: %w", err)
		}
		total += len(boot)
		boot = boot[:0]
		return nil
	}
	for _, b := range batches {
		boot = append(boot, auditd.WireRecords(b)...)
		if len(boot) >= 4096 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	fmt.Printf("loadgen: fleet of %d servers bootstrapped (%d records)\n", fleet.Size(), total)

	// The watch probe owns the first four servers (churn never touches
	// them): it subscribes to two alternative deployments, then repeatedly
	// flaps a watched NIC and times ingest ack → report notification.
	servers := fleet.Servers()
	if len(servers) < 5 {
		return fmt.Errorf("loadgen needs a fleet of at least 5 servers; got %d (raise -k)", len(servers))
	}
	probeServers := servers[:4]
	var (
		probeLats    []time.Duration
		probeEvents  int
		probeFailed  int
		probeLastErr string
		probeErr     error
		probeDone    = make(chan struct{})
	)
	if *probeEvery > 0 {
		w, err := cl.Watch(ctx, &auditd.SubmitRequest{
			Title: "loadgen watch probe",
			Deployments: []auditd.DeploymentWire{
				{Name: "primary", Servers: []string{probeServers[0], probeServers[1]}},
				{Name: "secondary", Servers: []string{probeServers[2], probeServers[3]}},
			},
		})
		if err != nil {
			return fmt.Errorf("watch subscribe: %w", err)
		}
		defer w.Close()
		if _, err := w.Next(); err != nil {
			return fmt.Errorf("initial watch report: %w", err)
		}
		node := fleet.Node(probeServers[0])
		go func() {
			defer close(probeDone)
			for {
				select {
				case <-ctx.Done():
					return
				case <-time.After(*probeEvery):
				}
				t0 := time.Now()
				rec := []deps.Record{node.FlapNIC()}
				if _, err := cl.Ingest(ctx, auditd.WireRecords(rec)); err != nil {
					if ctx.Err() == nil {
						probeErr = err
					}
					return
				}
				ev, err := w.Next()
				if err != nil {
					if ctx.Err() == nil {
						probeErr = err
					}
					return
				}
				probeEvents++
				if ev.Error != "" {
					probeFailed++
					probeLastErr = ev.Error
					continue
				}
				probeLats = append(probeLats, time.Since(t0))
			}
		}()
	} else {
		close(probeDone)
	}

	push := agentsim.PusherFunc(func(ctx context.Context, records []deps.Record) error {
		_, err := cl.Ingest(ctx, auditd.WireRecords(records))
		return err
	})
	stats, err := fleet.Run(ctx, push, agentsim.RunConfig{
		Rate:         *rate,
		Duration:     *duration,
		Concurrency:  *concurrency,
		BatchRecords: *batch,
		Seed:         *seed,
		Exclude:      probeServers,
	})
	if err != nil {
		return fmt.Errorf("churn run: %w", err)
	}
	cancel()
	<-probeDone

	fmt.Printf("loadgen: sustained %.0f records/sec for %v (%d batches, %d records, %d errors)\n",
		stats.RecordsPerSec(), stats.Elapsed.Round(time.Millisecond), stats.Batches, stats.Records, stats.Errors)
	fmt.Printf("loadgen: ingest push latency p50=%v p99=%v\n",
		stats.PushP50.Round(10*time.Microsecond), stats.PushP99.Round(10*time.Microsecond))
	if *probeEvery > 0 {
		if probeErr != nil {
			return fmt.Errorf("watch probe: %w", probeErr)
		}
		p50, p99 := agentsim.Percentiles(probeLats)
		fmt.Printf("loadgen: watch notifications %d (%d failed re-audits), ingest→notify over %d samples p50=%v p99=%v\n",
			probeEvents, probeFailed, len(probeLats), p50.Round(10*time.Microsecond), p99.Round(10*time.Microsecond))
		if probeLastErr != "" {
			fmt.Printf("loadgen: last failed re-audit: %s\n", probeLastErr)
		}
	}

	// Pull the daemon's view: how much re-auditing the churn triggered, and
	// how much of it the delta engine kept incremental.
	raw, err := cl.Metrics(context.Background())
	if err != nil {
		return fmt.Errorf("fetching metrics: %w", err)
	}
	m := parseMetrics(raw)
	hits, partial := m["auditd_delta_hits_total"], m["auditd_delta_partial_total"]
	comps := m["auditd_computations_total"]
	fmt.Printf("loadgen: daemon ingested=%.0f groups=%.0f throttled=%.0f computations=%.0f delta_hits=%.0f delta_partial=%.0f\n",
		m["auditd_depdb_ingested_records_total"], m["auditd_depdb_commit_groups_total"],
		m["auditd_depdb_throttled_total"], comps, hits, partial)
	if re := m["auditd_watch_reaudits_total"]; re > 0 {
		fmt.Printf("loadgen: incremental re-audits %.0f/%.0f (%.0f%%)\n",
			hits+partial, re, 100*(hits+partial)/re)
	}
	// The daemon's own ingest→notify histogram measures dirty-mark to
	// event-queued inside the process — the client-side probe numbers above
	// minus SSE delivery — so a gap between the two is network/decode time.
	if h, ok := telemetry.ParseHistogram(raw, "auditd_ingest_notify_seconds"); ok && h.Count() > 0 {
		fmt.Printf("loadgen: daemon-side ingest→notify over %d samples p50=%v p99=%v\n",
			h.Count(), h.Quantile(0.50).Round(10*time.Microsecond), h.Quantile(0.99).Round(10*time.Microsecond))
	}

	if stats.Records == 0 {
		return fmt.Errorf("no records were admitted")
	}
	if *probeEvery > 0 && probeEvents == 0 {
		return fmt.Errorf("the watch probe never received a re-audit notification")
	}
	return nil
}

// parseMetrics pulls the numeric value of every plain (unlabelled) sample
// from Prometheus text exposition.
func parseMetrics(raw string) map[string]float64 {
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(raw))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		out[name] = f
	}
	return out
}
