package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"indaas/internal/auditd"
)

// providerFlag collects repeated -provider "name=components.txt" flags.
type providerFlag []struct{ name, path string }

func (p *providerFlag) String() string { return fmt.Sprint(*p) }

func (p *providerFlag) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=components.txt, got %q", v)
	}
	*p = append(*p, struct{ name, path string }{name, path})
	return nil
}

// listFlag collects repeated comma-separated list flags (-deploy "a,b").
type listFlag [][]string

func (l *listFlag) String() string { return fmt.Sprint(*l) }

func (l *listFlag) Set(v string) error {
	parts := strings.Split(v, ",")
	if len(parts) < 2 {
		return fmt.Errorf("want at least two comma-separated provider names, got %q", v)
	}
	*l = append(*l, parts)
	return nil
}

// loadComponents reads a one-component-per-line file, skipping blanks and
// '#' comments — the same format `indaas proxy -components` serves.
func loadComponents(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var components []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" && !strings.HasPrefix(line, "#") {
			components = append(components, line)
		}
	}
	return components, sc.Err()
}

// cmdPrivateAudit runs a private independence audit (PIA, §4.2) — locally
// in-process, or through a running audit service's /v1/private-audits
// endpoint, which caches results by the providers' dataset fingerprints.
func cmdPrivateAudit(args []string) error {
	fs := flag.NewFlagSet("private-audit", flag.ExitOnError)
	server := fs.String("server", "", "audit service base URL (e.g. http://127.0.0.1:7080); empty = run locally")
	var providers providerFlag
	fs.Var(&providers, "provider", "provider dataset: name=components.txt (repeatable)")
	uses := fs.String("use", "", "comma-separated names of datasets already registered on the server")
	register := fs.Bool("register", false, "register -provider datasets on the server first and reference them by name")
	var deployments listFlag
	fs.Var(&deployments, "deploy", "deployment to audit: providerA,providerB[,...] (repeatable; default: every pair)")
	protocol := fs.String("protocol", "p-sop", "p-sop, ks or cleartext")
	bits := fs.Int("bits", 0, "protocol key size (0 = service default 512; paper setting 1024)")
	minhashM := fs.Int("minhash-m", 0, "MinHash signature size (0 = exact sets; ks defaults to 512)")
	minhashThreshold := fs.Int("minhash-threshold", 0, "switch to MinHash above this component count (0 = never)")
	ksBlindBits := fs.Int("ks-blind-bits", 0, "KS blinding-coefficient width (0 = full width)")
	workers := fs.Int("workers", 0, "concurrent pair audits and signing shards (0 = one per CPU)")
	title := fs.String("title", "indaas private audit", "report title")
	timeout := fs.Duration("timeout", 0, "job timeout (0 = service default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		// A bool flag given a value (-register x=y) strands everything after
		// it as positional arguments; refuse rather than silently drop them.
		return fmt.Errorf("private-audit: unexpected arguments %q (note: -register takes no value; datasets come from -provider)", fs.Args())
	}

	// One wire request serves both modes: remotely it is POSTed verbatim;
	// locally Local() applies the exact defaults the service would, so
	// offline and served audits cannot drift.
	req := &auditd.PrivateAuditRequest{
		Title:            *title,
		Deployments:      deployments,
		Protocol:         *protocol,
		Bits:             *bits,
		MinHashM:         *minhashM,
		MinHashThreshold: *minhashThreshold,
		KSBlindBits:      *ksBlindBits,
		Workers:          *workers,
		TimeoutMS:        timeout.Milliseconds(),
	}
	for _, name := range strings.Split(*uses, ",") {
		if name != "" {
			req.Providers = append(req.Providers, auditd.ProviderWire{Name: name})
		}
	}
	if *server == "" {
		if *uses != "" || *register {
			return fmt.Errorf("private-audit: -use and -register need -server")
		}
		if len(providers) < 2 {
			return fmt.Errorf("private-audit requires at least two -provider datasets (or -server with -use)")
		}
		for _, p := range providers {
			components, err := loadComponents(p.path)
			if err != nil {
				return err
			}
			req.Providers = append(req.Providers, auditd.ProviderWire{Name: p.name, Components: components})
		}
		resp, err := req.Local(context.Background())
		if err != nil {
			return err
		}
		return renderPrivateAudit(resp)
	}

	ctx := context.Background()
	c := auditd.NewClient(*server, nil)
	for _, p := range providers {
		components, err := loadComponents(p.path)
		if err != nil {
			return err
		}
		if *register {
			info, err := c.RegisterProvider(ctx, p.name, components)
			if err != nil {
				return err
			}
			fmt.Printf("registered %s: %d components, fingerprint %.12s…\n", info.Name, info.Components, info.Fingerprint)
			req.Providers = append(req.Providers, auditd.ProviderWire{Name: p.name})
		} else {
			req.Providers = append(req.Providers, auditd.ProviderWire{Name: p.name, Components: components})
		}
	}
	st, err := c.PrivateAudit(ctx, req)
	if err != nil {
		return err
	}
	fmt.Printf("job %s (%s, cache key %.12s…)\n", st.ID, st.State, st.CacheKey)
	end, err := c.WaitDone(ctx, st.ID)
	if err != nil {
		return err
	}
	if end.State != auditd.StateDone {
		return fmt.Errorf("job %s ended %s: %s", end.ID, end.State, end.Error)
	}
	resp, err := c.PrivateAuditResult(ctx, st.ID)
	if err != nil {
		return err
	}
	return renderPrivateAudit(resp)
}

// renderPrivateAudit prints the ranked independence table, most independent
// (lowest Jaccard similarity) deployment first.
func renderPrivateAudit(res *auditd.PrivateAuditResponse) error {
	fmt.Printf("=== INDaaS private audit (%s, %d pairs, %d bytes on the wire) ===\n",
		res.Protocol, res.Pairs, res.BytesSent)
	for _, p := range res.Providers {
		fmt.Printf("provider %s: %d components, fingerprint %.12s…\n", p.Name, p.Components, p.Fingerprint)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "rank\tdeployment\tjaccard\testimated\tbytes\telapsed")
	for i, e := range res.Entries {
		jcol := "-"
		if e.Jaccard != nil {
			jcol = fmt.Sprintf("%.4f", *e.Jaccard)
		}
		est := ""
		if e.Estimated {
			est = "minhash"
		}
		fmt.Fprintf(w, "#%d\t%s\t%s\t%s\t%d\t%s\n",
			i+1, strings.Join(e.Providers, " + "), jcol, est, e.BytesSent,
			time.Duration(e.ElapsedNS).Round(time.Microsecond))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if res.PairsPerSec != nil {
		fmt.Printf("throughput: %.1f pairs/sec\n", *res.PairsPerSec)
	}
	return nil
}
