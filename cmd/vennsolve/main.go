// Command vennsolve derives the synthetic package universe behind the
// Table 2 reproduction (§6.2.3).
//
// The paper measured Jaccard similarities between the apt dependency
// closures of Riak, MongoDB, Redis and CouchDB on four clouds. Those
// closures are not shipped with the paper, but any four sets are fully
// characterized by the cardinalities of the 15 non-empty regions of their
// Venn diagram. This tool searches for non-negative integer region sizes
// whose ten Jaccard similarities (six pairwise, four three-way) match
// Table 2 to four decimal places, using randomized integer local search
// with restarts.
//
// The winning region sizes are frozen into internal/swpkg/dataset.go; this
// tool is kept so the derivation is reproducible:
//
//	go run ./cmd/vennsolve -seed 1 -iters 4000000
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
)

// Region bit convention: bit 0 = Riak (Cloud1), bit 1 = MongoDB (Cloud2),
// bit 2 = Redis (Cloud3), bit 3 = CouchDB (Cloud4). Regions are the 15
// non-empty subsets 1..15; n[s] is the number of packages shared by exactly
// the clouds in s.

type target struct {
	mask int // subset of clouds audited together
	want float64
}

var targets = []target{
	// Table 2, two-way deployments.
	{0b0011, 0.5059}, // Cloud1 & Cloud2
	{0b0101, 0.2939}, // Cloud1 & Cloud3
	{0b1001, 0.2081}, // Cloud1 & Cloud4
	{0b0110, 0.1547}, // Cloud2 & Cloud3
	{0b1010, 0.1419}, // Cloud2 & Cloud4
	{0b1100, 0.3489}, // Cloud3 & Cloud4
	// Table 2, three-way deployments.
	{0b0111, 0.1536}, // Cloud1 & Cloud2 & Cloud3
	{0b1011, 0.1207}, // Cloud1 & Cloud2 & Cloud4
	{0b1101, 0.1353}, // Cloud1 & Cloud3 & Cloud4
	{0b1110, 0.1128}, // Cloud2 & Cloud3 & Cloud4
}

// jaccard computes |∩|/|∪| for the clouds in mask given region sizes n.
func jaccard(n [16]int, mask int) float64 {
	inter, union := 0, 0
	for s := 1; s < 16; s++ {
		if s&mask == mask {
			inter += n[s]
		}
		if s&mask != 0 {
			union += n[s]
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// maxErr is the worst absolute deviation from the ten targets.
func maxErr(n [16]int) float64 {
	worst := 0.0
	for _, t := range targets {
		if e := math.Abs(jaccard(n, t.mask) - t.want); e > worst {
			worst = e
		}
	}
	return worst
}

// continuousSolve finds a non-negative direction in the (approximate) null
// space of the homogeneous constraint system via projected gradient descent:
// every target J(S) = w is the linear constraint I_S − w·U_S = 0.
func continuousSolve(rng *rand.Rand) [16]float64 {
	var best [16]float64
	bestLoss := math.Inf(1)
	for restart := 0; restart < 60; restart++ {
		var x [16]float64
		for s := 1; s < 16; s++ {
			x[s] = rng.Float64()
		}
		for iter := 0; iter < 30000; iter++ {
			// Residuals and gradient of Σ (I − w·U)².
			var grad [16]float64
			for _, t := range targets {
				i, u := 0.0, 0.0
				for s := 1; s < 16; s++ {
					if s&t.mask == t.mask {
						i += x[s]
					}
					if s&t.mask != 0 {
						u += x[s]
					}
				}
				r := i - t.want*u
				for s := 1; s < 16; s++ {
					a := 0.0
					if s&t.mask == t.mask {
						a += 1
					}
					if s&t.mask != 0 {
						a -= t.want
					}
					grad[s] += 2 * r * a
				}
			}
			lr := 0.02
			sum := 0.0
			for s := 1; s < 16; s++ {
				x[s] -= lr * grad[s]
				if x[s] < 0 {
					x[s] = 0
				}
				sum += x[s]
			}
			if sum == 0 {
				break
			}
			for s := 1; s < 16; s++ {
				x[s] /= sum
			}
		}
		loss := 0.0
		for _, t := range targets {
			i, u := 0.0, 0.0
			for s := 1; s < 16; s++ {
				if s&t.mask == t.mask {
					i += x[s]
				}
				if s&t.mask != 0 {
					u += x[s]
				}
			}
			r := i/u - t.want
			loss += r * r
		}
		if loss < bestLoss {
			bestLoss = loss
			best = x
			fmt.Fprintf(os.Stderr, "continuous restart %d: rms=%.8f\n", restart, math.Sqrt(loss/float64(len(targets))))
		}
	}
	return best
}

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	iters := flag.Int("iters", 2_000_000, "integer repair iterations per scale")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	x := continuousSolve(rng)

	var best [16]int
	bestErr := math.Inf(1)
	scaleList := []float64{1500, 2000, 2500, 3000, 4000, 5000, 6000, 8000}
	if flag.NArg() > 0 {
		scaleList = nil
		for _, a := range flag.Args() {
			var v float64
			if _, err := fmt.Sscanf(a, "%g", &v); err != nil {
				fmt.Fprintf(os.Stderr, "bad scale %q: %v\n", a, err)
				os.Exit(2)
			}
			scaleList = append(scaleList, v)
		}
	}
	for _, scale := range scaleList {
		var n [16]int
		for s := 1; s < 16; s++ {
			n[s] = int(math.Round(x[s] * scale))
		}
		// Every cloud keeps at least a few private packages for realism.
		for _, s := range []int{0b0001, 0b0010, 0b0100, 0b1000} {
			if n[s] < 5 {
				n[s] = 5
			}
		}
		cur := maxErr(n)
		// Integer repair: small random moves, accept non-worsening.
		for i := 0; i < *iters; i++ {
			s := 1 + rng.Intn(15)
			delta := rng.Intn(7) - 3
			if delta == 0 {
				continue
			}
			old := n[s]
			n[s] += delta
			lo := 0
			if s == 0b0001 || s == 0b0010 || s == 0b0100 || s == 0b1000 {
				lo = 5
			}
			if n[s] < lo {
				n[s] = old
				continue
			}
			e := maxErr(n)
			if e <= cur {
				cur = e
			} else {
				n[s] = old
			}
		}
		fmt.Fprintf(os.Stderr, "scale %v: maxErr=%.6f\n", scale, cur)
		if cur < bestErr {
			bestErr = cur
			best = n
		}
		if bestErr < 0.00005 {
			break
		}
	}
	fmt.Printf("// maxErr = %.6f\n", bestErr)
	fmt.Printf("var regionSizes = map[int]int{\n")
	for s := 1; s < 16; s++ {
		if best[s] > 0 {
			fmt.Printf("\t0b%04b: %d,\n", s, best[s])
		}
	}
	fmt.Printf("}\n")
	for _, t := range targets {
		fmt.Printf("// J(%04b) = %.4f (target %.4f)\n", t.mask, jaccard(best, t.mask), t.want)
	}
	if bestErr >= 0.00005 {
		fmt.Fprintln(os.Stderr, "warning: did not reach 4-decimal precision")
		os.Exit(1)
	}
}
