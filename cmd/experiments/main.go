// Command experiments regenerates every table and figure of the paper's
// evaluation (§6) and prints measured-vs-paper comparisons.
//
// Usage:
//
//	experiments [-run all|table2|table3|fig6a|fig6b|fig6c|fig7|fig8|fig9] [-full] [-verify]
//
// By default every experiment runs at laptop scale; -full approaches the
// paper's parameters (hours of runtime for fig7/fig8/fig9). -verify exits
// non-zero if any acceptance criterion from DESIGN.md §3 fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"indaas/internal/exp"
	"indaas/internal/pia"
)

type experiment struct {
	name string
	run  func(full bool) (renderable, error)
}

type renderable interface {
	Render() *exp.Table
	Verify() error
}

func main() {
	runWhat := flag.String("run", "all", "experiment to run: all, table2, table3, fig6a, fig6b, fig6c, fig7, fig8, fig9")
	full := flag.Bool("full", false, "run at near-paper scale (slow)")
	verify := flag.Bool("verify", true, "check acceptance criteria and exit non-zero on mismatch")
	flag.Parse()

	experiments := []experiment{
		{"table3", func(bool) (renderable, error) { return exp.RunTable3() }},
		{"fig6a", func(full bool) (renderable, error) {
			cfg := exp.Fig6aConfig{}
			if full {
				cfg.Rounds = 1_000_000 // the paper's round count
			}
			return exp.RunFig6a(cfg)
		}},
		{"fig6b", func(bool) (renderable, error) { return exp.RunFig6b() }},
		{"table2", func(full bool) (renderable, error) {
			cfg := exp.Table2Config{Protocol: pia.ProtocolPSOP, Bits: 512}
			if full {
				cfg.Bits = 1024 // the paper's key size
			}
			return exp.RunTable2(cfg)
		}},
		{"fig7", func(full bool) (renderable, error) {
			cfg := exp.Fig7Config{}
			if full {
				cfg = exp.Fig7FullConfig()
			}
			return exp.RunFig7(cfg)
		}},
		{"fig8", func(full bool) (renderable, error) {
			cfg := exp.Fig8Config{}
			if full {
				cfg = exp.Fig8FullConfig()
			}
			return exp.RunFig8(cfg)
		}},
		{"fig9", func(full bool) (renderable, error) {
			cfg := exp.Fig9Config{}
			if full {
				cfg = exp.Fig9FullConfig()
			}
			return exp.RunFig9(cfg)
		}},
	}

	want := strings.ToLower(*runWhat)
	if want == "fig6c" {
		want = "table2" // Fig. 6c and Table 2 are the same case study
	}
	ran := 0
	failed := 0
	for _, e := range experiments {
		if want != "all" && want != e.name {
			continue
		}
		ran++
		fmt.Printf("running %s%s...\n", e.name, map[bool]string{true: " (full scale)"}[*full])
		res, err := e.run(*full)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			failed++
			continue
		}
		if err := res.Render().Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: rendering: %v\n", e.name, err)
			failed++
			continue
		}
		if *verify {
			if err := res.Verify(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: VERIFICATION FAILED: %v\n", e.name, err)
				failed++
			} else {
				fmt.Printf("%s: verified against the paper\n", e.name)
			}
		}
		fmt.Println()
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *runWhat)
		os.Exit(2)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
