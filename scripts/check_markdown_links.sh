#!/usr/bin/env bash
# Markdown link lint: every relative link target in the repo's markdown
# files must exist on disk, so README/ARCHITECTURE/PERFORMANCE cross-
# references cannot silently rot when files move. External (scheme://),
# mailto: and pure-anchor (#…) links are out of scope — no network access,
# plain bash + grep + awk only.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
while IFS= read -r file; do
    # Inline links: [text](target). Extract the target, strip any #fragment
    # and surrounding angle brackets; skip absolute URLs and bare anchors.
    while IFS= read -r target; do
        case "$target" in
        '' | '#'* | *'://'* | mailto:*) continue ;;
        esac
        target=${target%%#*}
        [ -n "$target" ] || continue
        base=$(dirname "$file")
        if [ ! -e "$base/$target" ] && [ ! -e "$target" ]; then
            echo "$file: broken relative link: $target" >&2
            fail=1
        fi
    done < <(grep -oE '\]\([^)[:space:]]+\)' "$file" | sed -E 's/^\]\(<?//; s/>?\)$//')
done < <(find . -name '*.md' -not -path './.git/*' -not -path './related/*')

if [ "$fail" -ne 0 ]; then
    echo "check_markdown_links: broken links found" >&2
    exit 1
fi
echo "check_markdown_links: all relative markdown links resolve"
