#!/usr/bin/env bash
# End-to-end smoke for the audit service: build the CLI, start
# `indaas serve`, submit an audit over HTTP, poll it to completion, and diff
# the JSON report (elapsed times zeroed) against the golden file shared with
# the Go e2e test. Also asserts the second identical submission is a cache
# hit. Requires curl and jq.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${SMOKE_ADDR:-127.0.0.1:7085}
BASE="http://$ADDR"
GOLDEN=internal/auditd/testdata/e2e_report_golden.json
TMP=$(mktemp -d)
SERVE_PID=
trap 'kill "${SERVE_PID:-}" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/indaas" ./cmd/indaas
"$TMP/indaas" serve -listen "$ADDR" &
SERVE_PID=$!

for _ in $(seq 100); do
    curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null

# Submit, long-poll to completion, fetch the report.
ID=$(curl -sf -X POST -H 'Content-Type: application/json' \
    --data @scripts/smoke_request.json "$BASE/v1/audits" | jq -r .id)
STATE=$(curl -sf "$BASE/v1/audits/$ID?wait=30s" | jq -r .state)
if [ "$STATE" != done ]; then
    echo "smoke: job $ID ended in state $STATE" >&2
    curl -s "$BASE/v1/audits/$ID" >&2
    exit 1
fi
curl -sf "$BASE/v1/audits/$ID/report" > "$TMP/report.json"
diff <(jq -S '.audits[].elapsed_ns = 0' "$TMP/report.json") <(jq -S . "$GOLDEN")

# An identical resubmission must be answered from the result cache.
CACHED=$(curl -sf -X POST -H 'Content-Type: application/json' \
    --data @scripts/smoke_request.json "$BASE/v1/audits" | jq -r '.cached == true and .state == "done"')
if [ "$CACHED" != true ]; then
    echo "smoke: identical resubmission was not a cache hit" >&2
    exit 1
fi
curl -sf "$BASE/metrics" | grep -q '^auditd_cache_hits_total 1$'

echo "smoke OK: report matches golden, cache hit confirmed"
