#!/usr/bin/env bash
# End-to-end smoke for the audit service. Two modes:
#
#   ./scripts/smoke.sh            base legs: build the CLI, start
#       `indaas serve`, submit an audit over HTTP, poll it to completion and
#       diff the JSON report (elapsed zeroed) against the golden file shared
#       with the Go e2e test; assert an identical resubmission is a cache
#       hit; run a placement recommendation against its golden file; and
#       exercise the /v1/depdb ingest path.
#
#   ./scripts/smoke.sh restart    durability leg: serve with -data-dir,
#       submit an audit and ingest records, kill -9 the daemon, restart it
#       over the same directory, and assert the report is served from disk
#       (no recomputation, store-hit metric increments) and the ingested
#       fingerprint survived.
#
#   ./scripts/smoke.sh chaos      survivability legs: (A) kill -9 the daemon
#       while a job is mid-computation (-chaos delay holds the worker) and
#       assert the restarted daemon re-enqueues it from the journal, finishes
#       it under the same id, and produces the golden report; (B) inject
#       ENOSPC into store writes and assert the daemon trips into degraded
#       memory-only serving (healthz reports it), keeps answering audits, and
#       restores durable mode once writes succeed again.
#
#   ./scripts/smoke.sh pia        private-audit leg: serve with -data-dir,
#       register two provider component sets (distinct fingerprints), run a
#       served P-SOP private audit and diff its report (clock-dependent
#       fields zeroed) against the golden file; assert resubmission is a
#       fingerprint-keyed cache hit that runs no new computation and that
#       the private-audit metrics counted the job.
#
#   ./scripts/smoke.sh cluster    clustering legs: boot a 4-node fleet
#       (-peers), push 16 distinct audits through one node and assert each
#       ran on exactly one node's pool (hash ownership; forwards counted),
#       that resubmission through another node is a fleet-wide cache hit,
#       that an ingest through one node converges every peer's DepDB
#       fingerprint before it is acknowledged, and that kill -9 of a peer
#       mid-job leaves the survivors serving everything. Then time the same
#       16-audit batch on a single node (same 1-worker, 300ms-delay build)
#       and require the 4-node fleet to have been >= 2.5x faster.
#
#   ./scripts/smoke.sh stream     streaming leg: serve durable with a rate
#       limit, subscribe a raw SSE watcher over GET /v1/watch, replay agent
#       churn with `indaas loadgen` (whose own watch probe must see re-audit
#       notifications), and assert the SSE watcher streamed re-audits, the
#       429 path throttled at least once, the delta engine kept re-audits
#       incremental, and computations stayed far below ingested records.
#
# The daemon is always reaped on exit — success, failure, or signal — and
# every HTTP call carries a timeout, so a hung leg fails fast with the
# server log tail instead of leaving an orphan process. Requires curl + jq.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=${1:-base}
ADDR=${SMOKE_ADDR:-127.0.0.1:7085}
BASE="http://$ADDR"
GOLDEN=internal/auditd/testdata/e2e_report_golden.json
RECOMMEND_GOLDEN=internal/auditd/testdata/e2e_recommend_golden.json
PIA_GOLDEN=internal/auditd/testdata/smoke_private_audit_golden.json
TMP=$(mktemp -d)
SERVE_PID=
SERVE_LOG="$TMP/serve.log"

CLUSTER_PIDS=()

cleanup() {
    status=$?
    if [ -n "${SERVE_PID:-}" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
        kill "$SERVE_PID" 2>/dev/null || true
        wait "$SERVE_PID" 2>/dev/null || true
    fi
    for pid in ${CLUSTER_PIDS+"${CLUSTER_PIDS[@]}"}; do
        if kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    if [ "$status" -ne 0 ]; then
        if [ -s "$SERVE_LOG" ]; then
            echo "--- server log tail ---" >&2
            tail -n 40 "$SERVE_LOG" >&2
        fi
        for log in "$TMP"/node-*.log; do
            [ -s "$log" ] || continue
            echo "--- $(basename "$log") tail ---" >&2
            tail -n 20 "$log" >&2
        done
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

die() {
    echo "smoke: $*" >&2
    exit 1
}

# curl with a hard deadline: a wedged daemon fails the leg instead of
# hanging the job (and orphaning the server) forever.
CURL=(curl -sf --max-time 45)

start_daemon() { # extra serve flags...
    "$TMP/indaas" serve -listen "$ADDR" "$@" >>"$SERVE_LOG" 2>&1 &
    SERVE_PID=$!
    for _ in $(seq 100); do
        "${CURL[@]}" "$BASE/healthz" >/dev/null 2>&1 && return 0
        kill -0 "$SERVE_PID" 2>/dev/null || die "daemon exited during startup"
        sleep 0.1
    done
    die "daemon did not become healthy within 10s"
}

stop_daemon() { # [signal]
    kill "${1:--TERM}" "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
    SERVE_PID=
}

submit() { # endpoint json-body → job id on stdout
    local id
    id=$("${CURL[@]}" -X POST -H 'Content-Type: application/json' --data "$2" "$BASE/$1" | jq -r .id) ||
        die "submitting to $1 failed"
    [ -n "$id" ] && [ "$id" != null ] || die "$1 returned no job id"
    echo "$id"
}

wait_done() { # job-id leg-name
    local state
    state=$("${CURL[@]}" "$BASE/v1/audits/$1?wait=30s" | jq -r .state) ||
        die "$2: polling job $1 failed"
    if [ "$state" != done ]; then
        "${CURL[@]}" "$BASE/v1/audits/$1" >&2 || true
        die "$2: job $1 ended in state $state"
    fi
}

metric() { # name → value on stdout (0 when absent)
    "${CURL[@]}" "$BASE/metrics" | awk -v name="$1" '$1 == name {print $2; found=1} END {if (!found) print 0}'
}

go build -o "$TMP/indaas" ./cmd/indaas

if [ "$MODE" = base ]; then
    start_daemon

    # Submit, long-poll to completion, fetch the report.
    ID=$(submit v1/audits @scripts/smoke_request.json)
    wait_done "$ID" audit
    "${CURL[@]}" "$BASE/v1/audits/$ID/report" > "$TMP/report.json"
    diff <(jq -S '.audits[].elapsed_ns = 0' "$TMP/report.json") <(jq -S . "$GOLDEN")

    # An identical resubmission must be answered from the result cache.
    CACHED=$("${CURL[@]}" -X POST -H 'Content-Type: application/json' \
        --data @scripts/smoke_request.json "$BASE/v1/audits" | jq -r '.cached == true and .state == "done"')
    [ "$CACHED" = true ] || die "identical resubmission was not a cache hit"
    [ "$(metric auditd_cache_hits_total)" = 1 ] || die "cache-hit metric did not increment"

    # Placement recommendation: submit the choose-2-of-6 search, poll it, and
    # diff the ranking (elapsed zeroed) against its golden file.
    RID=$(submit v1/recommend @scripts/recommend_request.json)
    wait_done "$RID" recommend
    "${CURL[@]}" "$BASE/v1/audits/$RID/report" > "$TMP/recommend.json"
    diff <(jq -S '.elapsed_ns = 0' "$TMP/recommend.json") <(jq -S . "$RECOMMEND_GOLDEN")

    # DepDB ingest: push the same records, then a record-less recommendation
    # over the ingested data must reproduce the same top-1 deployment.
    FP=$(jq '{records: .records}' scripts/recommend_request.json | \
        "${CURL[@]}" -X POST -H 'Content-Type: application/json' --data @- "$BASE/v1/depdb" | jq -r .fingerprint)
    { [ -n "$FP" ] && [ "$FP" != null ]; } || die "ingest returned no fingerprint"
    IID=$(submit v1/recommend "$(jq -c 'del(.records)' scripts/recommend_request.json)")
    wait_done "$IID" ingested-recommend
    TOP_INGESTED=$("${CURL[@]}" "$BASE/v1/audits/$IID/report" | jq -c '.rankings[0].nodes')
    TOP_INLINE=$(jq -c '.rankings[0].nodes' "$TMP/recommend.json")
    [ "$TOP_INGESTED" = "$TOP_INLINE" ] || die "ingested top-1 $TOP_INGESTED != inline top-1 $TOP_INLINE"

    # Delta audits: audit the server database, ingest one record no audited
    # deployment depends on (which still changes the DB fingerprint, i.e.
    # the content address), and re-submit. The re-audit must be answered
    # instantly from the lineage — delta_hit, no new computation — with a
    # byte-identical report.
    DELTA_BODY='{"deployments":[{"name":"n1+n3","servers":["n1","n3"]}]}'
    DID=$(submit v1/audits "$DELTA_BODY")
    wait_done "$DID" delta-cold-audit
    "${CURL[@]}" "$BASE/v1/audits/$DID/report" > "$TMP/delta-before.json"
    COMPUTATIONS_BEFORE=$(metric auditd_computations_total)

    "${CURL[@]}" -X POST -H 'Content-Type: application/json' \
        --data '{"records":[{"kind":"hardware","hw":"spare-1","type":"NIC","dep":"spare-1-x520"}]}' \
        "$BASE/v1/depdb" >/dev/null || die "delta ingest failed"

    DHIT=$("${CURL[@]}" -X POST -H 'Content-Type: application/json' --data "$DELTA_BODY" "$BASE/v1/audits")
    [ "$(jq -r '.delta_hit == true and .state == "done"' <<<"$DHIT")" = true ] ||
        die "re-audit after unrelated ingest was not a delta hit: $DHIT"
    DHID=$(jq -r .id <<<"$DHIT")
    "${CURL[@]}" "$BASE/v1/audits/$DHID/report" > "$TMP/delta-after.json"
    diff "$TMP/delta-before.json" "$TMP/delta-after.json" || die "delta-served report drifted"
    [ "$(metric auditd_delta_hits_total)" -ge 1 ] || die "auditd_delta_hits_total did not increment"
    [ "$(metric auditd_computations_total)" = "$COMPUTATIONS_BEFORE" ] ||
        die "delta re-audit ran a full recomputation"

    # Telemetry: the cold audit's trace must break its latency into phases
    # (queue-wait, graph-build, minimal-rgs at minimum), and the end-to-end
    # job-duration histogram must be on /metrics.
    TRACE=$("${CURL[@]}" "$BASE/v1/jobs/$ID/trace")
    PHASES=$(jq '.trace | length' <<<"$TRACE")
    [ "$PHASES" -ge 3 ] || die "cold audit trace has $PHASES phases, want >= 3: $TRACE"
    jq -e '[.trace[].name] | contains(["queue-wait","graph-build","minimal-rgs"])' <<<"$TRACE" >/dev/null ||
        die "cold audit trace misses a pipeline phase: $TRACE"
    "${CURL[@]}" "$BASE/metrics" | grep -q '^auditd_job_duration_seconds_bucket{le=' ||
        die "/metrics lacks the auditd_job_duration_seconds histogram"

    echo "smoke OK: report + recommendation match goldens; cache, ingest, delta-audit and trace legs confirmed"
    exit 0
fi

if [ "$MODE" = restart ]; then
    DATA="$TMP/data"
    start_daemon -data-dir "$DATA"

    # Compute an audit and ingest records while the first daemon runs.
    ID=$(submit v1/audits @scripts/smoke_request.json)
    wait_done "$ID" pre-restart-audit
    "${CURL[@]}" "$BASE/v1/audits/$ID/report" > "$TMP/report-before.json"
    diff <(jq -S '.audits[].elapsed_ns = 0' "$TMP/report-before.json") <(jq -S . "$GOLDEN")

    FP=$(jq '{records: .records}' scripts/recommend_request.json | \
        "${CURL[@]}" -X POST -H 'Content-Type: application/json' --data @- "$BASE/v1/depdb" | jq -r .fingerprint)
    { [ -n "$FP" ] && [ "$FP" != null ]; } || die "ingest returned no fingerprint"
    RID=$(submit v1/recommend "$(jq -c 'del(.records)' scripts/recommend_request.json)")
    wait_done "$RID" pre-restart-recommend
    RKEY=$("${CURL[@]}" "$BASE/v1/audits/$RID" | jq -r .cache_key)

    # Hard kill: no graceful shutdown may help the daemon persist anything.
    stop_daemon -KILL

    start_daemon -data-dir "$DATA"

    # The restarted daemon serves the same DepDB fingerprint...
    FP_AFTER=$("${CURL[@]}" "$BASE/healthz" | jq -r .db_fingerprint)
    [ "$FP_AFTER" = "$FP" ] || die "fingerprint changed across restart: $FP_AFTER != $FP"

    # ...answers the audit from disk without recomputing...
    HIT=$("${CURL[@]}" -X POST -H 'Content-Type: application/json' \
        --data @scripts/smoke_request.json "$BASE/v1/audits")
    [ "$(jq -r '.cached == true and .disk_hit == true and .state == "done"' <<<"$HIT")" = true ] ||
        die "post-restart audit was not a disk hit: $HIT"
    HID=$(jq -r .id <<<"$HIT")
    "${CURL[@]}" "$BASE/v1/audits/$HID/report" > "$TMP/report-after.json"
    diff "$TMP/report-before.json" "$TMP/report-after.json"

    # ...and the record-less recommendation resolves to the same content
    # address and is served from disk too.
    RHIT=$("${CURL[@]}" -X POST -H 'Content-Type: application/json' \
        --data "$(jq -c 'del(.records)' scripts/recommend_request.json)" "$BASE/v1/recommend")
    [ "$(jq -r .cache_key <<<"$RHIT")" = "$RKEY" ] || die "recommend cache key drifted across restart"
    [ "$(jq -r '.disk_hit == true and .state == "done"' <<<"$RHIT")" = true ] ||
        die "post-restart recommend was not a disk hit: $RHIT"

    [ "$(metric auditd_store_hits_total)" = 2 ] || die "store-hit metric is $(metric auditd_store_hits_total), want 2"
    [ "$(metric auditd_computations_total)" = 0 ] || die "restarted daemon recomputed instead of serving from disk"

    # The store survives an offline integrity check after the kill -9.
    stop_daemon
    "$TMP/indaas" store verify -data-dir "$DATA" >/dev/null || die "store verify failed after hard kill"

    echo "smoke OK: report and DepDB fingerprint survived kill -9; served from disk with zero recomputation"
    exit 0
fi

if [ "$MODE" = chaos ]; then
    # Leg A: kill -9 mid-job. The 3s delay hook parks the worker inside the
    # computation, guaranteeing the kill lands after the job is journaled but
    # before it completes.
    DATA="$TMP/data"
    start_daemon -data-dir "$DATA" -chaos delay=3s
    ID=$(submit v1/audits @scripts/smoke_request.json)
    stop_daemon -KILL

    # The restarted daemon (no chaos) must recover the journaled job under
    # its original id and finish it: same golden report as a clean run.
    start_daemon -data-dir "$DATA"
    wait_done "$ID" recovered-audit
    ST=$("${CURL[@]}" "$BASE/v1/audits/$ID")
    [ "$(jq -r .recovered <<<"$ST")" = true ] || die "finished job was not flagged recovered: $ST"
    "${CURL[@]}" "$BASE/v1/audits/$ID/report" > "$TMP/report-recovered.json"
    diff <(jq -S '.audits[].elapsed_ns = 0' "$TMP/report-recovered.json") <(jq -S . "$GOLDEN")
    [ "$(metric auditd_jobs_recovered_total)" = 1 ] || die "auditd_jobs_recovered_total did not increment"
    stop_daemon
    "$TMP/indaas" store verify -data-dir "$DATA" >/dev/null || die "store verify failed after crash recovery"

    # Leg B: ENOSPC. Write 1 is the new segment's magic; the first audit's
    # journal (write 2) and result (write 3) both fail, tripping the breaker
    # at the threshold of 2.
    DATA2="$TMP/data2"
    start_daemon -data-dir "$DATA2" -chaos enospc=2:2 \
        -store-failure-threshold 2 -store-retry-interval 2s
    ID=$(submit v1/audits @scripts/smoke_request.json)
    wait_done "$ID" enospc-audit
    for _ in $(seq 50); do
        [ "$(metric auditd_degraded)" = 1 ] && break
        sleep 0.1
    done
    HEALTH=$("${CURL[@]}" "$BASE/healthz")
    [ "$(jq -r .status <<<"$HEALTH")" = degraded ] || die "healthz not degraded after ENOSPC: $HEALTH"
    [ "$(jq -r .durable <<<"$HEALTH")" = false ] || die "degraded healthz still claims durable: $HEALTH"
    [ "$(jq -r '.store_errors >= 2' <<<"$HEALTH")" = true ] || die "store_errors missing from healthz: $HEALTH"

    # A degraded daemon keeps serving: a distinct audit completes in memory.
    ID2=$(submit v1/audits "$(jq -c '.deployments[0].name = "degraded-alt"' scripts/smoke_request.json)")
    wait_done "$ID2" degraded-audit
    [ "$(metric auditd_store_breaker_trips_total)" = 1 ] || die "breaker trip metric did not increment"

    # After the retry interval the next write probes the (now fault-free)
    # store and restores durable mode.
    sleep 2.5
    ID3=$(submit v1/audits "$(jq -c '.deployments[0].name = "probe-alt"' scripts/smoke_request.json)")
    wait_done "$ID3" probe-audit
    for _ in $(seq 50); do
        [ "$(metric auditd_degraded)" = 0 ] && break
        sleep 0.1
    done
    HEALTH=$("${CURL[@]}" "$BASE/healthz")
    [ "$(jq -r .status <<<"$HEALTH")" = ok ] || die "healthz still degraded after probe: $HEALTH"
    [ "$(jq -r .durable <<<"$HEALTH")" = true ] || die "durable mode not restored: $HEALTH"
    stop_daemon
    "$TMP/indaas" store verify -data-dir "$DATA2" >/dev/null || die "store verify failed after degraded run"

    echo "smoke OK: journaled job survived kill -9 with a golden report; ENOSPC degraded to memory-only and recovered to durable"
    exit 0
fi

if [ "$MODE" = pia ]; then
    DATA="$TMP/data"
    start_daemon -data-dir "$DATA"

    # Register the two provider component sets; the daemon answers each with
    # its canonical dataset fingerprint, and different sets must get
    # different fingerprints (they key the private-audit content address).
    FPA=$("${CURL[@]}" -X POST -H 'Content-Type: application/json' \
        --data '{"name":"CloudA","components":["pkg:linux-image","pkg:libc6","pkg:openssl","pkg:nginx","pkg:zookeeper","pkg:java-runtime"]}' \
        "$BASE/v1/providers" | jq -r .fingerprint)
    FPB=$("${CURL[@]}" -X POST -H 'Content-Type: application/json' \
        --data '{"name":"CloudB","components":["pkg:linux-image","pkg:libc6","pkg:openssl","pkg:httpd","pkg:erlang"]}' \
        "$BASE/v1/providers" | jq -r .fingerprint)
    { [ -n "$FPA" ] && [ "$FPA" != null ] && [ -n "$FPB" ] && [ "$FPB" != null ]; } ||
        die "provider registration returned no fingerprint"
    [ "$FPA" != "$FPB" ] || die "distinct datasets share a fingerprint: $FPA"
    [ "$("${CURL[@]}" "$BASE/v1/providers" | jq '.providers | length')" = 2 ] ||
        die "GET /v1/providers does not list both registered providers"

    # Run the P-SOP audit over the registered datasets and diff the report
    # against the golden (wall-clock and crypto-payload sizes zeroed — the
    # modulus is fresh per run; the Jaccard, ranking and fingerprints are
    # deterministic).
    PIA_NORM='.elapsed_ns = 0 | .pairs_per_sec = 0 | .bytes_sent = 0
        | .entries[].elapsed_ns = 0 | .entries[].bytes_sent = 0'
    ID=$(submit v1/private-audits @scripts/private_audit_request.json)
    wait_done "$ID" private-audit
    "${CURL[@]}" "$BASE/v1/audits/$ID/report" > "$TMP/pia.json"
    diff <(jq -S "$PIA_NORM" "$TMP/pia.json") <(jq -S . "$PIA_GOLDEN")

    # Resubmitting the identical audit must be a cache hit keyed on the
    # provider fingerprints: answered done, no new computation.
    COMPUTATIONS_BEFORE=$(metric auditd_computations_total)
    HIT=$("${CURL[@]}" -X POST -H 'Content-Type: application/json' \
        --data @scripts/private_audit_request.json "$BASE/v1/private-audits")
    [ "$(jq -r '.cached == true and .state == "done"' <<<"$HIT")" = true ] ||
        die "identical private-audit resubmission was not a cache hit: $HIT"
    [ "$(metric auditd_computations_total)" = "$COMPUTATIONS_BEFORE" ] ||
        die "private-audit resubmission ran a new computation"

    [ "$(metric auditd_private_audits_total)" -ge 1 ] || die "auditd_private_audits_total did not count the audit"
    [ "$(metric auditd_private_pairs_total)" -ge 1 ] || die "auditd_private_pairs_total did not count the pair"

    echo "smoke OK: private audit matched the golden report; resubmission hit the fingerprint-keyed cache with computations unchanged"
    exit 0
fi

if [ "$MODE" = stream ]; then
    DATA="$TMP/data"
    # The admission cap sits below the loadgen target so the 429/Retry-After
    # path is exercised and the fleet self-paces down to it.
    start_daemon -data-dir "$DATA" -ingest-rate 3000

    # Raw SSE watcher on the HTTP surface: deployment "a" sits in the
    # churned part of the fleet, "b" on quiet servers (loadgen's probe owns
    # the first four and only ever flaps srv0_0_0) — so every re-audit has a
    # clean deployment to splice against and stays incremental.
    SSE_LOG="$TMP/sse.log"
    SPEC='{"title":"smoke sse","deployments":[{"name":"a","servers":["srv1_0_0","srv1_0_1"]},{"name":"b","servers":["srv0_1_0","srv0_1_1"]}]}'
    curl -sN --max-time 120 --get --data-urlencode "spec=$SPEC" "$BASE/v1/watch" > "$SSE_LOG" &
    SSE_PID=$!

    # loadgen exits non-zero when no records land or its watch probe never
    # receives a re-audit notification.
    "$TMP/indaas" loadgen -server "$BASE" -k 4 -rate 6000 -duration 4s -seed 7 > "$TMP/loadgen.out" 2>&1 ||
        { cat "$TMP/loadgen.out" >&2; die "loadgen failed"; }
    cat "$TMP/loadgen.out"

    kill "$SSE_PID" 2>/dev/null || true
    wait "$SSE_PID" 2>/dev/null || true
    SSE_EVENTS=$(grep -c '^event: report' "$SSE_LOG" || true)
    [ "$SSE_EVENTS" -ge 2 ] || die "SSE watcher saw $SSE_EVENTS report frames, want the initial report plus re-audits"
    grep -q '"report":{' "$SSE_LOG" || die "SSE frames carried no report payload"

    INGESTED=$(metric auditd_depdb_ingested_records_total)
    COMPUTATIONS=$(metric auditd_computations_total)
    HITS=$(metric auditd_delta_hits_total)
    PARTIAL=$(metric auditd_delta_partial_total)
    THROTTLED=$(metric auditd_depdb_throttled_total)
    REAUDITS=$(metric auditd_watch_reaudits_total)
    echo "smoke stream: ingested=$INGESTED computations=$COMPUTATIONS delta_hits=$HITS delta_partial=$PARTIAL throttled=$THROTTLED reaudits=$REAUDITS"

    [ "$((HITS + PARTIAL))" -ge 1 ] || die "no re-audit stayed incremental (hits=$HITS partial=$PARTIAL)"
    # The majority of triggered re-audits must reuse an ancestor (each
    # watcher's very first audit is necessarily cold).
    [ "$(((HITS + PARTIAL) * 2))" -gt "$REAUDITS" ] ||
        die "only $((HITS + PARTIAL)) of $REAUDITS re-audits were incremental"
    [ "$THROTTLED" -ge 1 ] || die "the rate limit never throttled despite loadgen outrunning -ingest-rate"
    [ "$((COMPUTATIONS * 20))" -lt "$INGESTED" ] ||
        die "computations ($COMPUTATIONS) not far below ingested records ($INGESTED)"
    [ "$(metric auditd_watch_subscriptions_total)" -ge 2 ] || die "watch subscriptions metric missed the SSE + probe watchers"

    echo "smoke OK: SSE watcher streamed $SSE_EVENTS report frames under churn; re-audits stayed incremental; 429 self-pacing engaged"
    exit 0
fi

if [ "$MODE" = cluster ]; then
    # Every node runs one worker with a 300ms compute delay so throughput is
    # dominated by computation and scales with the number of pools — the
    # fleet-vs-single-node timing below measures parallelism, not HTTP
    # overhead. Ports are fixed: the hash ring is keyed on peer addresses,
    # so fixed ports make the job→owner placement reproducible run to run.
    CPORTS=(7191 7192 7193 7194)
    CBASES=()
    for p in "${CPORTS[@]}"; do CBASES+=("http://127.0.0.1:$p"); done

    # The single-daemon helpers above are bound to $BASE; the fleet versions
    # take the node's base URL as their first argument.
    cstart_node() { # port peers-csv → appends pid to CLUSTER_PIDS
        local port=$1 peers=$2
        local args=(serve -listen "127.0.0.1:$port" -workers 1 -chaos delay=300ms)
        [ -n "$peers" ] && args+=(-peers "$peers" -cluster-poll 200ms)
        "$TMP/indaas" "${args[@]}" >>"$TMP/node-$port.log" 2>&1 &
        CLUSTER_PIDS+=($!)
    }

    cwait_healthy() { # base
        for _ in $(seq 100); do
            "${CURL[@]}" "$1/healthz" >/dev/null 2>&1 && return 0
            sleep 0.1
        done
        die "cluster: node $1 did not become healthy within 10s"
    }

    cmetric() { # base name → value (0 when absent)
        "${CURL[@]}" "$1/metrics" | awk -v name="$2" '$1 == name {print $2; found=1} END {if (!found) print 0}'
    }

    csubmit() { # base json-body → job id
        local id
        id=$("${CURL[@]}" -X POST -H 'Content-Type: application/json' --data "$2" "$1/v1/audits" | jq -r .id) ||
            die "cluster: audit submission to $1 failed"
        [ -n "$id" ] && [ "$id" != null ] || die "cluster: $1 returned no job id"
        echo "$id"
    }

    cwait_done() { # base job-id leg-name
        local state
        state=$("${CURL[@]}" "$1/v1/audits/$2?wait=30s" | jq -r .state) ||
            die "$3: polling job $2 on $1 failed"
        [ "$state" = done ] || die "$3: job $2 ended in state $state"
    }

    # shard_body N: a distinct single-deployment, self-contained audit. One
    # deployment keeps the router on the plain forwarding path (2+ would
    # fan out), inline records make every node eligible regardless of its
    # DepDB, and the name salts the content address so the 16 shards spread
    # across the ring.
    shard_body() {
        jq -c --arg n "shard-$1" \
            '{title: ("cluster " + $n), deployments: [(.deployments[0] + {name: $n})], records: .records}' \
            scripts/smoke_request.json
    }

    # run_batch base: submit the 16 shards through one node, wait for all of
    # them, print the elapsed seconds. Submission is non-blocking, so the
    # elapsed time is dominated by how many 300ms computations can run at
    # once — the fleet's parallelism.
    run_batch() {
        local base=$1 ids=() t0 t1 i
        t0=$(date +%s.%N)
        for i in $(seq 0 15); do
            ids+=("$(csubmit "$base" "$(shard_body "$i")")")
        done
        for i in "${ids[@]}"; do
            cwait_done "$base" "$i" batch
        done
        t1=$(date +%s.%N)
        awk -v a="$t0" -v b="$t1" 'BEGIN {printf "%.2f", b - a}'
    }

    # --- boot the 4-node fleet and wait for full mutual health ---
    for i in 0 1 2 3; do
        peers=""
        for j in 0 1 2 3; do
            [ "$i" = "$j" ] && continue
            peers="${peers:+$peers,}${CBASES[$j]}"
        done
        cstart_node "${CPORTS[$i]}" "$peers"
    done
    for b in "${CBASES[@]}"; do
        cwait_healthy "$b"
    done
    for b in "${CBASES[@]}"; do
        for _ in $(seq 50); do
            [ "$(cmetric "$b" auditd_cluster_peers_healthy)" = 3 ] && break
            sleep 0.1
        done
        [ "$(cmetric "$b" auditd_cluster_peers_healthy)" = 3 ] ||
            die "node $b never saw 3 healthy peers"
    done

    # --- 16 distinct audits through node A: hash routing spreads the work ---
    T4=$(run_batch "${CBASES[0]}")
    TOTAL=0 BUSY_NODES=0
    for b in "${CBASES[@]}"; do
        C=$(cmetric "$b" auditd_computations_total)
        TOTAL=$((TOTAL + C))
        [ "$C" -ge 1 ] && BUSY_NODES=$((BUSY_NODES + 1))
    done
    [ "$TOTAL" = 16 ] || die "fleet computed $TOTAL jobs for 16 audits; each must run on exactly one node"
    [ "$BUSY_NODES" -ge 2 ] || die "all 16 audits computed on one node; hash routing is not spreading work"
    [ "$(cmetric "${CBASES[0]}" auditd_cluster_forwards_total)" -ge 1 ] ||
        die "node A forwarded nothing despite owning only part of the keyspace"

    # --- resubmission through node B: fleet-wide content-addressed cache ---
    for i in $(seq 0 15); do
        HIT=$("${CURL[@]}" -X POST -H 'Content-Type: application/json' \
            --data "$(shard_body "$i")" "${CBASES[1]}/v1/audits")
        [ "$(jq -r '.cached == true and .state == "done"' <<<"$HIT")" = true ] ||
            die "shard-$i resubmitted via node B was not a cache hit: $HIT"
    done
    TOTAL_AFTER=0
    for b in "${CBASES[@]}"; do
        TOTAL_AFTER=$((TOTAL_AFTER + $(cmetric "$b" auditd_computations_total)))
    done
    [ "$TOTAL_AFTER" = 16 ] || die "resubmission recomputed: fleet total went 16 -> $TOTAL_AFTER"
    [ "$(cmetric "${CBASES[1]}" auditd_cluster_peer_cache_hits_total)" -ge 1 ] ||
        die "node B never served a result out of a peer's cache"

    # --- many-deployment audit fans out and splices back to the golden ---
    FID=$(csubmit "${CBASES[0]}" "$(cat scripts/smoke_request.json)")
    cwait_done "${CBASES[0]}" "$FID" fanout
    "${CURL[@]}" "${CBASES[0]}/v1/audits/$FID/report" > "$TMP/fanout.json"
    diff <(jq -S '.audits[].elapsed_ns = 0' "$TMP/fanout.json") <(jq -S . "$GOLDEN") ||
        die "fanned-out audit report drifted from the single-node golden"
    [ "$(cmetric "${CBASES[0]}" auditd_cluster_fanouts_total)" -ge 1 ] ||
        die "many-deployment audit did not fan out"

    # --- ingest through node A replicates to every peer before the ack ---
    FP=$(jq '{records: .records}' scripts/recommend_request.json | \
        "${CURL[@]}" -X POST -H 'Content-Type: application/json' --data @- "${CBASES[0]}/v1/depdb" | jq -r .fingerprint)
    { [ -n "$FP" ] && [ "$FP" != null ]; } || die "cluster ingest returned no fingerprint"
    for b in "${CBASES[@]}"; do
        PFP=$("${CURL[@]}" "$b/healthz" | jq -r .db_fingerprint)
        [ "$PFP" = "$FP" ] || die "node $b fingerprint $PFP != ingested $FP; replication did not converge"
    done
    [ "$(cmetric "${CBASES[0]}" auditd_cluster_replicated_records_total)" -ge 1 ] ||
        die "ingest through node A replicated nothing"

    # --- kill -9 a peer mid-job: survivors serve everything ---
    KIDS=()
    for i in $(seq 16 23); do
        KIDS+=("$(csubmit "${CBASES[0]}" "$(shard_body "$i")")")
    done
    kill -9 "${CLUSTER_PIDS[3]}" 2>/dev/null || true
    wait "${CLUSTER_PIDS[3]}" 2>/dev/null || true
    for id in "${KIDS[@]}"; do
        cwait_done "${CBASES[0]}" "$id" post-kill
    done
    for _ in $(seq 100); do
        [ "$(cmetric "${CBASES[0]}" auditd_cluster_peers_healthy)" = 2 ] && break
        sleep 0.1
    done
    [ "$(cmetric "${CBASES[0]}" auditd_cluster_peers_healthy)" = 2 ] ||
        die "node A still counts the killed peer as healthy"
    ID=$(csubmit "${CBASES[1]}" "$(shard_body survivor)")
    cwait_done "${CBASES[1]}" "$ID" survivor-audit

    # --- stop the fleet, rerun the same 16 audits on one node, compare ---
    for pid in "${CLUSTER_PIDS[@]}"; do
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    CLUSTER_PIDS=()
    cstart_node "${CPORTS[0]}" ""
    cwait_healthy "${CBASES[0]}"
    T1=$(run_batch "${CBASES[0]}")

    echo "smoke cluster: 16 audits took ${T4}s on 4 nodes vs ${T1}s on 1 node"
    awk -v one="$T1" -v four="$T4" 'BEGIN {exit !(one >= 2.5 * four)}' ||
        die "4-node fleet was only $(awk -v one="$T1" -v four="$T4" 'BEGIN {printf "%.2f", one/four}')x faster, want >= 2.5x"

    echo "smoke OK: hash routing spread 16 audits with per-node attribution; peer cache, fan-out splice and ingest replication confirmed; fleet survived kill -9 and beat one node by >= 2.5x"
    exit 0
fi

die "unknown mode $MODE (want base, restart, chaos, pia, stream or cluster)"
