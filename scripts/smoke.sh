#!/usr/bin/env bash
# End-to-end smoke for the audit service: build the CLI, start
# `indaas serve`, submit an audit over HTTP, poll it to completion, and diff
# the JSON report (elapsed times zeroed) against the golden file shared with
# the Go e2e test. Also asserts the second identical submission is a cache
# hit, runs a placement recommendation through /v1/recommend against its own
# golden file, and exercises the /v1/depdb ingest path. Requires curl and jq.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${SMOKE_ADDR:-127.0.0.1:7085}
BASE="http://$ADDR"
GOLDEN=internal/auditd/testdata/e2e_report_golden.json
RECOMMEND_GOLDEN=internal/auditd/testdata/e2e_recommend_golden.json
TMP=$(mktemp -d)
SERVE_PID=
trap 'kill "${SERVE_PID:-}" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/indaas" ./cmd/indaas
"$TMP/indaas" serve -listen "$ADDR" &
SERVE_PID=$!

for _ in $(seq 100); do
    curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null

# Submit, long-poll to completion, fetch the report.
ID=$(curl -sf -X POST -H 'Content-Type: application/json' \
    --data @scripts/smoke_request.json "$BASE/v1/audits" | jq -r .id)
STATE=$(curl -sf "$BASE/v1/audits/$ID?wait=30s" | jq -r .state)
if [ "$STATE" != done ]; then
    echo "smoke: job $ID ended in state $STATE" >&2
    curl -s "$BASE/v1/audits/$ID" >&2
    exit 1
fi
curl -sf "$BASE/v1/audits/$ID/report" > "$TMP/report.json"
diff <(jq -S '.audits[].elapsed_ns = 0' "$TMP/report.json") <(jq -S . "$GOLDEN")

# An identical resubmission must be answered from the result cache.
CACHED=$(curl -sf -X POST -H 'Content-Type: application/json' \
    --data @scripts/smoke_request.json "$BASE/v1/audits" | jq -r '.cached == true and .state == "done"')
if [ "$CACHED" != true ]; then
    echo "smoke: identical resubmission was not a cache hit" >&2
    exit 1
fi
curl -sf "$BASE/metrics" | grep -q '^auditd_cache_hits_total 1$'

# Placement recommendation: submit the choose-2-of-6 search, poll it, and
# diff the ranking (elapsed zeroed) against its golden file.
RID=$(curl -sf -X POST -H 'Content-Type: application/json' \
    --data @scripts/recommend_request.json "$BASE/v1/recommend" | jq -r .id)
RSTATE=$(curl -sf "$BASE/v1/audits/$RID?wait=30s" | jq -r .state)
if [ "$RSTATE" != done ]; then
    echo "smoke: recommend job $RID ended in state $RSTATE" >&2
    curl -s "$BASE/v1/audits/$RID" >&2
    exit 1
fi
curl -sf "$BASE/v1/audits/$RID/report" > "$TMP/recommend.json"
diff <(jq -S '.elapsed_ns = 0' "$TMP/recommend.json") <(jq -S . "$RECOMMEND_GOLDEN")

# DepDB ingest: push the same records, then a record-less recommendation
# over the ingested data must reproduce the same top-1 deployment.
FP=$(jq '{records: .records}' scripts/recommend_request.json | \
    curl -sf -X POST -H 'Content-Type: application/json' --data @- "$BASE/v1/depdb" | jq -r .fingerprint)
if [ -z "$FP" ] || [ "$FP" = null ]; then
    echo "smoke: ingest returned no fingerprint" >&2
    exit 1
fi
IID=$(jq 'del(.records)' scripts/recommend_request.json | \
    curl -sf -X POST -H 'Content-Type: application/json' --data @- "$BASE/v1/recommend" | jq -r .id)
ISTATE=$(curl -sf "$BASE/v1/audits/$IID?wait=30s" | jq -r .state)
if [ "$ISTATE" != done ]; then
    echo "smoke: ingested recommend job $IID ended in state $ISTATE" >&2
    exit 1
fi
TOP_INGESTED=$(curl -sf "$BASE/v1/audits/$IID/report" | jq -c '.rankings[0].nodes')
TOP_INLINE=$(jq -c '.rankings[0].nodes' "$TMP/recommend.json")
if [ "$TOP_INGESTED" != "$TOP_INLINE" ]; then
    echo "smoke: ingested top-1 $TOP_INGESTED != inline top-1 $TOP_INLINE" >&2
    exit 1
fi

echo "smoke OK: report + recommendation match goldens, cache hit and ingest confirmed"
