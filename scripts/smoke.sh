#!/usr/bin/env bash
# End-to-end smoke for the audit service. Two modes:
#
#   ./scripts/smoke.sh            base legs: build the CLI, start
#       `indaas serve`, submit an audit over HTTP, poll it to completion and
#       diff the JSON report (elapsed zeroed) against the golden file shared
#       with the Go e2e test; assert an identical resubmission is a cache
#       hit; run a placement recommendation against its golden file; and
#       exercise the /v1/depdb ingest path.
#
#   ./scripts/smoke.sh restart    durability leg: serve with -data-dir,
#       submit an audit and ingest records, kill -9 the daemon, restart it
#       over the same directory, and assert the report is served from disk
#       (no recomputation, store-hit metric increments) and the ingested
#       fingerprint survived.
#
#   ./scripts/smoke.sh chaos      survivability legs: (A) kill -9 the daemon
#       while a job is mid-computation (-chaos delay holds the worker) and
#       assert the restarted daemon re-enqueues it from the journal, finishes
#       it under the same id, and produces the golden report; (B) inject
#       ENOSPC into store writes and assert the daemon trips into degraded
#       memory-only serving (healthz reports it), keeps answering audits, and
#       restores durable mode once writes succeed again.
#
#   ./scripts/smoke.sh pia        private-audit leg: serve with -data-dir,
#       register two provider component sets (distinct fingerprints), run a
#       served P-SOP private audit and diff its report (clock-dependent
#       fields zeroed) against the golden file; assert resubmission is a
#       fingerprint-keyed cache hit that runs no new computation and that
#       the private-audit metrics counted the job.
#
#   ./scripts/smoke.sh stream     streaming leg: serve durable with a rate
#       limit, subscribe a raw SSE watcher over GET /v1/watch, replay agent
#       churn with `indaas loadgen` (whose own watch probe must see re-audit
#       notifications), and assert the SSE watcher streamed re-audits, the
#       429 path throttled at least once, the delta engine kept re-audits
#       incremental, and computations stayed far below ingested records.
#
# The daemon is always reaped on exit — success, failure, or signal — and
# every HTTP call carries a timeout, so a hung leg fails fast with the
# server log tail instead of leaving an orphan process. Requires curl + jq.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=${1:-base}
ADDR=${SMOKE_ADDR:-127.0.0.1:7085}
BASE="http://$ADDR"
GOLDEN=internal/auditd/testdata/e2e_report_golden.json
RECOMMEND_GOLDEN=internal/auditd/testdata/e2e_recommend_golden.json
PIA_GOLDEN=internal/auditd/testdata/smoke_private_audit_golden.json
TMP=$(mktemp -d)
SERVE_PID=
SERVE_LOG="$TMP/serve.log"

cleanup() {
    status=$?
    if [ -n "${SERVE_PID:-}" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
        kill "$SERVE_PID" 2>/dev/null || true
        wait "$SERVE_PID" 2>/dev/null || true
    fi
    if [ "$status" -ne 0 ] && [ -s "$SERVE_LOG" ]; then
        echo "--- server log tail ---" >&2
        tail -n 40 "$SERVE_LOG" >&2
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

die() {
    echo "smoke: $*" >&2
    exit 1
}

# curl with a hard deadline: a wedged daemon fails the leg instead of
# hanging the job (and orphaning the server) forever.
CURL=(curl -sf --max-time 45)

start_daemon() { # extra serve flags...
    "$TMP/indaas" serve -listen "$ADDR" "$@" >>"$SERVE_LOG" 2>&1 &
    SERVE_PID=$!
    for _ in $(seq 100); do
        "${CURL[@]}" "$BASE/healthz" >/dev/null 2>&1 && return 0
        kill -0 "$SERVE_PID" 2>/dev/null || die "daemon exited during startup"
        sleep 0.1
    done
    die "daemon did not become healthy within 10s"
}

stop_daemon() { # [signal]
    kill "${1:--TERM}" "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
    SERVE_PID=
}

submit() { # endpoint json-body → job id on stdout
    local id
    id=$("${CURL[@]}" -X POST -H 'Content-Type: application/json' --data "$2" "$BASE/$1" | jq -r .id) ||
        die "submitting to $1 failed"
    [ -n "$id" ] && [ "$id" != null ] || die "$1 returned no job id"
    echo "$id"
}

wait_done() { # job-id leg-name
    local state
    state=$("${CURL[@]}" "$BASE/v1/audits/$1?wait=30s" | jq -r .state) ||
        die "$2: polling job $1 failed"
    if [ "$state" != done ]; then
        "${CURL[@]}" "$BASE/v1/audits/$1" >&2 || true
        die "$2: job $1 ended in state $state"
    fi
}

metric() { # name → value on stdout (0 when absent)
    "${CURL[@]}" "$BASE/metrics" | awk -v name="$1" '$1 == name {print $2; found=1} END {if (!found) print 0}'
}

go build -o "$TMP/indaas" ./cmd/indaas

if [ "$MODE" = base ]; then
    start_daemon

    # Submit, long-poll to completion, fetch the report.
    ID=$(submit v1/audits @scripts/smoke_request.json)
    wait_done "$ID" audit
    "${CURL[@]}" "$BASE/v1/audits/$ID/report" > "$TMP/report.json"
    diff <(jq -S '.audits[].elapsed_ns = 0' "$TMP/report.json") <(jq -S . "$GOLDEN")

    # An identical resubmission must be answered from the result cache.
    CACHED=$("${CURL[@]}" -X POST -H 'Content-Type: application/json' \
        --data @scripts/smoke_request.json "$BASE/v1/audits" | jq -r '.cached == true and .state == "done"')
    [ "$CACHED" = true ] || die "identical resubmission was not a cache hit"
    [ "$(metric auditd_cache_hits_total)" = 1 ] || die "cache-hit metric did not increment"

    # Placement recommendation: submit the choose-2-of-6 search, poll it, and
    # diff the ranking (elapsed zeroed) against its golden file.
    RID=$(submit v1/recommend @scripts/recommend_request.json)
    wait_done "$RID" recommend
    "${CURL[@]}" "$BASE/v1/audits/$RID/report" > "$TMP/recommend.json"
    diff <(jq -S '.elapsed_ns = 0' "$TMP/recommend.json") <(jq -S . "$RECOMMEND_GOLDEN")

    # DepDB ingest: push the same records, then a record-less recommendation
    # over the ingested data must reproduce the same top-1 deployment.
    FP=$(jq '{records: .records}' scripts/recommend_request.json | \
        "${CURL[@]}" -X POST -H 'Content-Type: application/json' --data @- "$BASE/v1/depdb" | jq -r .fingerprint)
    { [ -n "$FP" ] && [ "$FP" != null ]; } || die "ingest returned no fingerprint"
    IID=$(submit v1/recommend "$(jq -c 'del(.records)' scripts/recommend_request.json)")
    wait_done "$IID" ingested-recommend
    TOP_INGESTED=$("${CURL[@]}" "$BASE/v1/audits/$IID/report" | jq -c '.rankings[0].nodes')
    TOP_INLINE=$(jq -c '.rankings[0].nodes' "$TMP/recommend.json")
    [ "$TOP_INGESTED" = "$TOP_INLINE" ] || die "ingested top-1 $TOP_INGESTED != inline top-1 $TOP_INLINE"

    # Delta audits: audit the server database, ingest one record no audited
    # deployment depends on (which still changes the DB fingerprint, i.e.
    # the content address), and re-submit. The re-audit must be answered
    # instantly from the lineage — delta_hit, no new computation — with a
    # byte-identical report.
    DELTA_BODY='{"deployments":[{"name":"n1+n3","servers":["n1","n3"]}]}'
    DID=$(submit v1/audits "$DELTA_BODY")
    wait_done "$DID" delta-cold-audit
    "${CURL[@]}" "$BASE/v1/audits/$DID/report" > "$TMP/delta-before.json"
    COMPUTATIONS_BEFORE=$(metric auditd_computations_total)

    "${CURL[@]}" -X POST -H 'Content-Type: application/json' \
        --data '{"records":[{"kind":"hardware","hw":"spare-1","type":"NIC","dep":"spare-1-x520"}]}' \
        "$BASE/v1/depdb" >/dev/null || die "delta ingest failed"

    DHIT=$("${CURL[@]}" -X POST -H 'Content-Type: application/json' --data "$DELTA_BODY" "$BASE/v1/audits")
    [ "$(jq -r '.delta_hit == true and .state == "done"' <<<"$DHIT")" = true ] ||
        die "re-audit after unrelated ingest was not a delta hit: $DHIT"
    DHID=$(jq -r .id <<<"$DHIT")
    "${CURL[@]}" "$BASE/v1/audits/$DHID/report" > "$TMP/delta-after.json"
    diff "$TMP/delta-before.json" "$TMP/delta-after.json" || die "delta-served report drifted"
    [ "$(metric auditd_delta_hits_total)" -ge 1 ] || die "auditd_delta_hits_total did not increment"
    [ "$(metric auditd_computations_total)" = "$COMPUTATIONS_BEFORE" ] ||
        die "delta re-audit ran a full recomputation"

    # Telemetry: the cold audit's trace must break its latency into phases
    # (queue-wait, graph-build, minimal-rgs at minimum), and the end-to-end
    # job-duration histogram must be on /metrics.
    TRACE=$("${CURL[@]}" "$BASE/v1/jobs/$ID/trace")
    PHASES=$(jq '.trace | length' <<<"$TRACE")
    [ "$PHASES" -ge 3 ] || die "cold audit trace has $PHASES phases, want >= 3: $TRACE"
    jq -e '[.trace[].name] | contains(["queue-wait","graph-build","minimal-rgs"])' <<<"$TRACE" >/dev/null ||
        die "cold audit trace misses a pipeline phase: $TRACE"
    "${CURL[@]}" "$BASE/metrics" | grep -q '^auditd_job_duration_seconds_bucket{le=' ||
        die "/metrics lacks the auditd_job_duration_seconds histogram"

    echo "smoke OK: report + recommendation match goldens; cache, ingest, delta-audit and trace legs confirmed"
    exit 0
fi

if [ "$MODE" = restart ]; then
    DATA="$TMP/data"
    start_daemon -data-dir "$DATA"

    # Compute an audit and ingest records while the first daemon runs.
    ID=$(submit v1/audits @scripts/smoke_request.json)
    wait_done "$ID" pre-restart-audit
    "${CURL[@]}" "$BASE/v1/audits/$ID/report" > "$TMP/report-before.json"
    diff <(jq -S '.audits[].elapsed_ns = 0' "$TMP/report-before.json") <(jq -S . "$GOLDEN")

    FP=$(jq '{records: .records}' scripts/recommend_request.json | \
        "${CURL[@]}" -X POST -H 'Content-Type: application/json' --data @- "$BASE/v1/depdb" | jq -r .fingerprint)
    { [ -n "$FP" ] && [ "$FP" != null ]; } || die "ingest returned no fingerprint"
    RID=$(submit v1/recommend "$(jq -c 'del(.records)' scripts/recommend_request.json)")
    wait_done "$RID" pre-restart-recommend
    RKEY=$("${CURL[@]}" "$BASE/v1/audits/$RID" | jq -r .cache_key)

    # Hard kill: no graceful shutdown may help the daemon persist anything.
    stop_daemon -KILL

    start_daemon -data-dir "$DATA"

    # The restarted daemon serves the same DepDB fingerprint...
    FP_AFTER=$("${CURL[@]}" "$BASE/healthz" | jq -r .db_fingerprint)
    [ "$FP_AFTER" = "$FP" ] || die "fingerprint changed across restart: $FP_AFTER != $FP"

    # ...answers the audit from disk without recomputing...
    HIT=$("${CURL[@]}" -X POST -H 'Content-Type: application/json' \
        --data @scripts/smoke_request.json "$BASE/v1/audits")
    [ "$(jq -r '.cached == true and .disk_hit == true and .state == "done"' <<<"$HIT")" = true ] ||
        die "post-restart audit was not a disk hit: $HIT"
    HID=$(jq -r .id <<<"$HIT")
    "${CURL[@]}" "$BASE/v1/audits/$HID/report" > "$TMP/report-after.json"
    diff "$TMP/report-before.json" "$TMP/report-after.json"

    # ...and the record-less recommendation resolves to the same content
    # address and is served from disk too.
    RHIT=$("${CURL[@]}" -X POST -H 'Content-Type: application/json' \
        --data "$(jq -c 'del(.records)' scripts/recommend_request.json)" "$BASE/v1/recommend")
    [ "$(jq -r .cache_key <<<"$RHIT")" = "$RKEY" ] || die "recommend cache key drifted across restart"
    [ "$(jq -r '.disk_hit == true and .state == "done"' <<<"$RHIT")" = true ] ||
        die "post-restart recommend was not a disk hit: $RHIT"

    [ "$(metric auditd_store_hits_total)" = 2 ] || die "store-hit metric is $(metric auditd_store_hits_total), want 2"
    [ "$(metric auditd_computations_total)" = 0 ] || die "restarted daemon recomputed instead of serving from disk"

    # The store survives an offline integrity check after the kill -9.
    stop_daemon
    "$TMP/indaas" store verify -data-dir "$DATA" >/dev/null || die "store verify failed after hard kill"

    echo "smoke OK: report and DepDB fingerprint survived kill -9; served from disk with zero recomputation"
    exit 0
fi

if [ "$MODE" = chaos ]; then
    # Leg A: kill -9 mid-job. The 3s delay hook parks the worker inside the
    # computation, guaranteeing the kill lands after the job is journaled but
    # before it completes.
    DATA="$TMP/data"
    start_daemon -data-dir "$DATA" -chaos delay=3s
    ID=$(submit v1/audits @scripts/smoke_request.json)
    stop_daemon -KILL

    # The restarted daemon (no chaos) must recover the journaled job under
    # its original id and finish it: same golden report as a clean run.
    start_daemon -data-dir "$DATA"
    wait_done "$ID" recovered-audit
    ST=$("${CURL[@]}" "$BASE/v1/audits/$ID")
    [ "$(jq -r .recovered <<<"$ST")" = true ] || die "finished job was not flagged recovered: $ST"
    "${CURL[@]}" "$BASE/v1/audits/$ID/report" > "$TMP/report-recovered.json"
    diff <(jq -S '.audits[].elapsed_ns = 0' "$TMP/report-recovered.json") <(jq -S . "$GOLDEN")
    [ "$(metric auditd_jobs_recovered_total)" = 1 ] || die "auditd_jobs_recovered_total did not increment"
    stop_daemon
    "$TMP/indaas" store verify -data-dir "$DATA" >/dev/null || die "store verify failed after crash recovery"

    # Leg B: ENOSPC. Write 1 is the new segment's magic; the first audit's
    # journal (write 2) and result (write 3) both fail, tripping the breaker
    # at the threshold of 2.
    DATA2="$TMP/data2"
    start_daemon -data-dir "$DATA2" -chaos enospc=2:2 \
        -store-failure-threshold 2 -store-retry-interval 2s
    ID=$(submit v1/audits @scripts/smoke_request.json)
    wait_done "$ID" enospc-audit
    for _ in $(seq 50); do
        [ "$(metric auditd_degraded)" = 1 ] && break
        sleep 0.1
    done
    HEALTH=$("${CURL[@]}" "$BASE/healthz")
    [ "$(jq -r .status <<<"$HEALTH")" = degraded ] || die "healthz not degraded after ENOSPC: $HEALTH"
    [ "$(jq -r .durable <<<"$HEALTH")" = false ] || die "degraded healthz still claims durable: $HEALTH"
    [ "$(jq -r '.store_errors >= 2' <<<"$HEALTH")" = true ] || die "store_errors missing from healthz: $HEALTH"

    # A degraded daemon keeps serving: a distinct audit completes in memory.
    ID2=$(submit v1/audits "$(jq -c '.deployments[0].name = "degraded-alt"' scripts/smoke_request.json)")
    wait_done "$ID2" degraded-audit
    [ "$(metric auditd_store_breaker_trips_total)" = 1 ] || die "breaker trip metric did not increment"

    # After the retry interval the next write probes the (now fault-free)
    # store and restores durable mode.
    sleep 2.5
    ID3=$(submit v1/audits "$(jq -c '.deployments[0].name = "probe-alt"' scripts/smoke_request.json)")
    wait_done "$ID3" probe-audit
    for _ in $(seq 50); do
        [ "$(metric auditd_degraded)" = 0 ] && break
        sleep 0.1
    done
    HEALTH=$("${CURL[@]}" "$BASE/healthz")
    [ "$(jq -r .status <<<"$HEALTH")" = ok ] || die "healthz still degraded after probe: $HEALTH"
    [ "$(jq -r .durable <<<"$HEALTH")" = true ] || die "durable mode not restored: $HEALTH"
    stop_daemon
    "$TMP/indaas" store verify -data-dir "$DATA2" >/dev/null || die "store verify failed after degraded run"

    echo "smoke OK: journaled job survived kill -9 with a golden report; ENOSPC degraded to memory-only and recovered to durable"
    exit 0
fi

if [ "$MODE" = pia ]; then
    DATA="$TMP/data"
    start_daemon -data-dir "$DATA"

    # Register the two provider component sets; the daemon answers each with
    # its canonical dataset fingerprint, and different sets must get
    # different fingerprints (they key the private-audit content address).
    FPA=$("${CURL[@]}" -X POST -H 'Content-Type: application/json' \
        --data '{"name":"CloudA","components":["pkg:linux-image","pkg:libc6","pkg:openssl","pkg:nginx","pkg:zookeeper","pkg:java-runtime"]}' \
        "$BASE/v1/providers" | jq -r .fingerprint)
    FPB=$("${CURL[@]}" -X POST -H 'Content-Type: application/json' \
        --data '{"name":"CloudB","components":["pkg:linux-image","pkg:libc6","pkg:openssl","pkg:httpd","pkg:erlang"]}' \
        "$BASE/v1/providers" | jq -r .fingerprint)
    { [ -n "$FPA" ] && [ "$FPA" != null ] && [ -n "$FPB" ] && [ "$FPB" != null ]; } ||
        die "provider registration returned no fingerprint"
    [ "$FPA" != "$FPB" ] || die "distinct datasets share a fingerprint: $FPA"
    [ "$("${CURL[@]}" "$BASE/v1/providers" | jq '.providers | length')" = 2 ] ||
        die "GET /v1/providers does not list both registered providers"

    # Run the P-SOP audit over the registered datasets and diff the report
    # against the golden (wall-clock and crypto-payload sizes zeroed — the
    # modulus is fresh per run; the Jaccard, ranking and fingerprints are
    # deterministic).
    PIA_NORM='.elapsed_ns = 0 | .pairs_per_sec = 0 | .bytes_sent = 0
        | .entries[].elapsed_ns = 0 | .entries[].bytes_sent = 0'
    ID=$(submit v1/private-audits @scripts/private_audit_request.json)
    wait_done "$ID" private-audit
    "${CURL[@]}" "$BASE/v1/audits/$ID/report" > "$TMP/pia.json"
    diff <(jq -S "$PIA_NORM" "$TMP/pia.json") <(jq -S . "$PIA_GOLDEN")

    # Resubmitting the identical audit must be a cache hit keyed on the
    # provider fingerprints: answered done, no new computation.
    COMPUTATIONS_BEFORE=$(metric auditd_computations_total)
    HIT=$("${CURL[@]}" -X POST -H 'Content-Type: application/json' \
        --data @scripts/private_audit_request.json "$BASE/v1/private-audits")
    [ "$(jq -r '.cached == true and .state == "done"' <<<"$HIT")" = true ] ||
        die "identical private-audit resubmission was not a cache hit: $HIT"
    [ "$(metric auditd_computations_total)" = "$COMPUTATIONS_BEFORE" ] ||
        die "private-audit resubmission ran a new computation"

    [ "$(metric auditd_private_audits_total)" -ge 1 ] || die "auditd_private_audits_total did not count the audit"
    [ "$(metric auditd_private_pairs_total)" -ge 1 ] || die "auditd_private_pairs_total did not count the pair"

    echo "smoke OK: private audit matched the golden report; resubmission hit the fingerprint-keyed cache with computations unchanged"
    exit 0
fi

if [ "$MODE" = stream ]; then
    DATA="$TMP/data"
    # The admission cap sits below the loadgen target so the 429/Retry-After
    # path is exercised and the fleet self-paces down to it.
    start_daemon -data-dir "$DATA" -ingest-rate 3000

    # Raw SSE watcher on the HTTP surface: deployment "a" sits in the
    # churned part of the fleet, "b" on quiet servers (loadgen's probe owns
    # the first four and only ever flaps srv0_0_0) — so every re-audit has a
    # clean deployment to splice against and stays incremental.
    SSE_LOG="$TMP/sse.log"
    SPEC='{"title":"smoke sse","deployments":[{"name":"a","servers":["srv1_0_0","srv1_0_1"]},{"name":"b","servers":["srv0_1_0","srv0_1_1"]}]}'
    curl -sN --max-time 120 --get --data-urlencode "spec=$SPEC" "$BASE/v1/watch" > "$SSE_LOG" &
    SSE_PID=$!

    # loadgen exits non-zero when no records land or its watch probe never
    # receives a re-audit notification.
    "$TMP/indaas" loadgen -server "$BASE" -k 4 -rate 6000 -duration 4s -seed 7 > "$TMP/loadgen.out" 2>&1 ||
        { cat "$TMP/loadgen.out" >&2; die "loadgen failed"; }
    cat "$TMP/loadgen.out"

    kill "$SSE_PID" 2>/dev/null || true
    wait "$SSE_PID" 2>/dev/null || true
    SSE_EVENTS=$(grep -c '^event: report' "$SSE_LOG" || true)
    [ "$SSE_EVENTS" -ge 2 ] || die "SSE watcher saw $SSE_EVENTS report frames, want the initial report plus re-audits"
    grep -q '"report":{' "$SSE_LOG" || die "SSE frames carried no report payload"

    INGESTED=$(metric auditd_depdb_ingested_records_total)
    COMPUTATIONS=$(metric auditd_computations_total)
    HITS=$(metric auditd_delta_hits_total)
    PARTIAL=$(metric auditd_delta_partial_total)
    THROTTLED=$(metric auditd_depdb_throttled_total)
    REAUDITS=$(metric auditd_watch_reaudits_total)
    echo "smoke stream: ingested=$INGESTED computations=$COMPUTATIONS delta_hits=$HITS delta_partial=$PARTIAL throttled=$THROTTLED reaudits=$REAUDITS"

    [ "$((HITS + PARTIAL))" -ge 1 ] || die "no re-audit stayed incremental (hits=$HITS partial=$PARTIAL)"
    # The majority of triggered re-audits must reuse an ancestor (each
    # watcher's very first audit is necessarily cold).
    [ "$(((HITS + PARTIAL) * 2))" -gt "$REAUDITS" ] ||
        die "only $((HITS + PARTIAL)) of $REAUDITS re-audits were incremental"
    [ "$THROTTLED" -ge 1 ] || die "the rate limit never throttled despite loadgen outrunning -ingest-rate"
    [ "$((COMPUTATIONS * 20))" -lt "$INGESTED" ] ||
        die "computations ($COMPUTATIONS) not far below ingested records ($INGESTED)"
    [ "$(metric auditd_watch_subscriptions_total)" -ge 2 ] || die "watch subscriptions metric missed the SSE + probe watchers"

    echo "smoke OK: SSE watcher streamed $SSE_EVENTS report frames under churn; re-audits stayed incremental; 429 self-pacing engaged"
    exit 0
fi

die "unknown mode $MODE (want base, restart, chaos, pia or stream)"
