#!/usr/bin/env bash
# Metric naming lint: every metric the daemon exposes must follow the
# Prometheus conventions this repo documents in README.md — counters end in
# _total, timings in _seconds, sizes in _bytes — or be one of the known
# gauges listed below. A new metric with a bare name fails CI until it is
# either renamed or deliberately added to the allowlist (and the README
# metrics table).
set -euo pipefail
cd "$(dirname "$0")/.."

# Gauges whose names are dimensionless by design. Keep in sync with the
# README "Observability" metrics table.
ALLOWED_GAUGES=(
    auditd_build_info
    auditd_cache_entries
    auditd_cache_hit_rate
    auditd_cluster_peers
    auditd_cluster_peers_healthy
    auditd_degraded
    auditd_goroutines
    auditd_queue_depth
    auditd_store_entries
    auditd_store_recovered_entries
    auditd_watch_subscribers
    auditd_workers
    auditd_workers_busy
)

# Every auditd_* metric name in the renderers — quoted arguments and names
# embedded in format strings (auditd_build_info) alike. Comments mentioning
# metric names are held to the same convention, which is what we want. The
# cluster layer renders its series onto the same /metrics page, so its
# renderer is linted identically.
names=$(grep -ohE 'auditd_[a-z0-9_]+' internal/auditd/metrics.go internal/cluster/metrics.go | sort -u)
[ -n "$names" ] || { echo "check_metric_names: found no metric names in metrics.go" >&2; exit 1; }

fail=0
for name in $names; do
    case "$name" in
    *_total | *_seconds | *_bytes) continue ;;
    esac
    ok=0
    for g in "${ALLOWED_GAUGES[@]}"; do
        [ "$name" = "$g" ] && ok=1 && break
    done
    if [ "$ok" -ne 1 ]; then
        echo "check_metric_names: $name lacks a _total/_seconds/_bytes suffix and is not a documented gauge" >&2
        fail=1
    fi
done
exit "$fail"
